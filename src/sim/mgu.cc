#include "sim/mgu.h"

#include "util/simd.h"

namespace save {

uint16_t
elmF32(const VecReg &a, const VecReg &b, uint16_t wm)
{
    // Zero detection over the actual operand values (+-0.0 both count:
    // the product is exactly zero and the accumulation is
    // ineffectual). Routed through the host-SIMD backend; all backends
    // agree bit-for-bit with the scalar reference (util/simd.h).
    return simd::ops().elmF32(a, b, wm);
}

uint32_t
elmMp(const VecReg &a, const VecReg &b, uint16_t wm)
{
    return simd::ops().elmMp(a, b, wm);
}

uint16_t
mpAlMask(uint32_t ml_mask)
{
    uint16_t al = 0;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        if ((ml_mask >> (kMlPerAl * lane)) & 0x3u)
            al |= static_cast<uint16_t>(1u << lane);
    }
    return al;
}

} // namespace save
