#include "sim/vpu.h"

#include "util/logging.h"

namespace save {

VpuPipeline::Op &
VpuPipeline::insertOp(uint64_t done_cycle)
{
    SAVE_ASSERT(!busy_, "VPU double issue in one cycle");
    busy_ = true;
    ++ops_;

    if (count_ == q_.size()) {
        // Grow preserving ring order (cold: only with latencies > 15).
        std::vector<Op> bigger(q_.size() * 2);
        for (size_t i = 0; i < count_; ++i)
            bigger[i] = q_[(head_ + i) % q_.size()];
        q_ = std::move(bigger);
        head_ = 0;
    }
    // Sorted insert by completion cycle. A fully pipelined unit running
    // mixed-latency ops (FP32 FMA at 4 cycles, VDPBF16PS at 6)
    // completes out of issue order, and drainCompleted/nextCompletion
    // pop from the head assuming it holds the minimum; ties keep issue
    // order. Shift distance is bounded by the latency gap (<= 2 in the
    // paper's configs), so the hot path stays an append.
    size_t pos = count_;
    while (pos > 0 &&
           q_[(head_ + pos - 1) % q_.size()].doneCycle > done_cycle) {
        q_[(head_ + pos) % q_.size()] =
            std::move(q_[(head_ + pos - 1) % q_.size()]);
        --pos;
    }
    ++count_;
    Op &op = q_[(head_ + pos) % q_.size()];
    op.doneCycle = done_cycle;
    op.writes.clear();
    op.hasVec = false;
    return op;
}

void
VpuPipeline::issue(const LaneWrite *writes, size_t n, uint64_t done_cycle)
{
    Op &op = insertOp(done_cycle);
    lanes_ += n;
    for (size_t i = 0; i < n; ++i)
        op.writes.push_back(writes[i]);
}

void
VpuPipeline::issueVec(const VecWrite &write, uint64_t done_cycle)
{
    Op &op = insertOp(done_cycle);
    lanes_ += kVecLanes;
    op.vec = write;
    op.hasVec = true;
}

int
VpuPipeline::drainCompleted(uint64_t now, std::vector<LaneWrite> &out,
                            std::vector<VecWrite> &vec_out)
{
    int popped = 0;
    while (count_ > 0 && q_[head_].doneCycle <= now) {
        const Op &op = q_[head_];
        out.insert(out.end(), op.writes.begin(), op.writes.end());
        if (op.hasVec)
            vec_out.push_back(op.vec);
        head_ = (head_ + 1) % q_.size();
        --count_;
        ++popped;
    }
    return popped;
}

int
VpuPipeline::drainCompleted(uint64_t now, std::vector<LaneWrite> &out)
{
    int popped = 0;
    while (count_ > 0 && q_[head_].doneCycle <= now) {
        const Op &op = q_[head_];
        out.insert(out.end(), op.writes.begin(), op.writes.end());
        if (op.hasVec) {
            for (int lane = 0; lane < kVecLanes; ++lane)
                out.push_back(LaneWrite{op.vec.dstPhys,
                                        static_cast<int8_t>(lane),
                                        op.vec.value.f32(lane),
                                        op.vec.robIdx});
        }
        head_ = (head_ + 1) % q_.size();
        --count_;
        ++popped;
    }
    return popped;
}

} // namespace save
