#include "sim/vpu.h"

#include "util/logging.h"

namespace save {

void
VpuPipeline::issue(const LaneWrite *writes, size_t n, uint64_t done_cycle)
{
    SAVE_ASSERT(!busy_, "VPU double issue in one cycle");
    busy_ = true;
    ++ops_;
    lanes_ += n;

    if (count_ == q_.size()) {
        // Grow preserving ring order (cold: only with latencies > 15).
        std::vector<Op> bigger(q_.size() * 2);
        for (size_t i = 0; i < count_; ++i)
            bigger[i] = q_[(head_ + i) % q_.size()];
        q_ = std::move(bigger);
        head_ = 0;
    }
    // Sorted insert by completion cycle. A fully pipelined unit running
    // mixed-latency ops (FP32 FMA at 4 cycles, VDPBF16PS at 6)
    // completes out of issue order, and drainCompleted/nextCompletion
    // pop from the head assuming it holds the minimum; ties keep issue
    // order. Shift distance is bounded by the latency gap (<= 2 in the
    // paper's configs), so the hot path stays an append.
    size_t pos = count_;
    while (pos > 0 &&
           q_[(head_ + pos - 1) % q_.size()].doneCycle > done_cycle) {
        q_[(head_ + pos) % q_.size()] =
            std::move(q_[(head_ + pos - 1) % q_.size()]);
        --pos;
    }
    Op &op = q_[(head_ + pos) % q_.size()];
    op.doneCycle = done_cycle;
    op.writes.clear();
    for (size_t i = 0; i < n; ++i)
        op.writes.push_back(writes[i]);
    ++count_;
}

int
VpuPipeline::drainCompleted(uint64_t now, std::vector<LaneWrite> &out)
{
    int popped = 0;
    while (count_ > 0 && q_[head_].doneCycle <= now) {
        const LaneWriteVec &w = q_[head_].writes;
        out.insert(out.end(), w.begin(), w.end());
        head_ = (head_ + 1) % q_.size();
        --count_;
        ++popped;
    }
    return popped;
}

} // namespace save
