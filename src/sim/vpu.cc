#include "sim/vpu.h"

#include "util/logging.h"

namespace save {

void
VpuPipeline::issue(std::vector<LaneWrite> &&writes, uint64_t done_cycle)
{
    SAVE_ASSERT(!busy_, "VPU double issue in one cycle");
    SAVE_ASSERT(q_.empty() || done_cycle >= q_.back().doneCycle,
                "VPU completion order violated");
    busy_ = true;
    ++ops_;
    lanes_ += writes.size();
    q_.push_back({done_cycle, std::move(writes)});
}

std::vector<LaneWrite>
VpuPipeline::drainCompleted(uint64_t now)
{
    std::vector<LaneWrite> out;
    while (!q_.empty() && q_.front().doneCycle <= now) {
        auto &w = q_.front().writes;
        out.insert(out.end(), w.begin(), w.end());
        q_.pop_front();
    }
    return out;
}

} // namespace save
