/**
 * @file
 * Mask Generation Unit (paper SecIII, Fig. 4).
 *
 * For each lane the MGU checks the corresponding elements of the two
 * multiplicands: the lane is effectual iff both are non-zero and the
 * write-mask bit (when present) is set. FP32 VFMAs get a 16-bit ELM;
 * mixed-precision VFMAs get a 32-bit per-multiplicand-lane ELM.
 *
 * MGUs are replicated to match the issue width, so ELM generation is
 * never a throughput bottleneck; the core charges one cycle between
 * operand readiness and ELM validity.
 */

#ifndef SAVE_SIM_MGU_H
#define SAVE_SIM_MGU_H

#include <cstdint>

#include "isa/vec.h"

namespace save {

/** 16-bit effectual-lane mask for an FP32 VFMA. */
uint16_t elmF32(const VecReg &a, const VecReg &b, uint16_t wm);

/** 32-bit effectual-multiplicand-lane mask for a mixed-precision VFMA.
 *  The write mask is per accumulator lane and masks both of its MLs. */
uint32_t elmMp(const VecReg &a, const VecReg &b, uint16_t wm);

/** Accumulator lanes that have at least one effectual ML. */
uint16_t mpAlMask(uint32_t ml_mask);

} // namespace save

#endif // SAVE_SIM_MGU_H
