/**
 * @file
 * Differential uop-stream fuzzer (paper SecIII software transparency).
 *
 * Seeded random programs — biased toward the hard corners: squash-heavy
 * fault placement, high broadcast sparsity, mixed precision, degenerate
 * write masks, store→load line reuse — are run through every scheduler
 * policy × fast-forward mode and checked three ways:
 *
 *   1. architectural state (all 32 logical registers + the memory
 *      region) must match the in-order ArchExecutor oracle bitwise,
 *   2. SAVE_FASTFORWARD=1 must reproduce the =0 cycle count and the
 *      entire stat map exactly, per policy,
 *   3. the drained machine must hold no leaked resources (free list
 *      full, ROB and RS empty).
 *
 * A failing program is shrunk by greedy delta-debugging to a minimal
 * repro, which serializes to a one-file text corpus entry
 * (tests/corpus/) and to a .savtrc trace via TraceWriter. When built
 * with -DSAVE_AUDIT=ON the cycle-granular invariant auditor
 * (sim/auditor.h) runs underneath every case, so structural violations
 * surface even when the architectural state happens to come out right.
 */

#ifndef SAVE_SIM_FUZZ_H
#define SAVE_SIM_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/uop.h"

namespace save {

/** One self-contained fuzz case: a memory region, its initial
 *  contents, a uop stream, and an optional injected fault. */
struct FuzzProgram
{
    uint64_t base = 0x10000;
    uint64_t bytes = 4096;
    /** Initial region contents, one 32-bit word per 4 bytes. */
    std::vector<uint32_t> words;
    std::vector<Uop> uops;
    /** Uop sequence number to fault at (squash + replay), -1 = none. */
    int64_t faultIndex = -1;
};

/** Deterministic program from a seed. Distinct seeds draw distinct
 *  generation profiles (sparsity, precision mix, mask style, fault
 *  placement); the same seed always yields the same program. */
FuzzProgram fuzzGenerate(uint64_t seed);

/** Run the full differential matrix over `p`. Returns "" when every
 *  case is clean, else a description of the first failure (case name,
 *  first mismatching location, expected vs actual). Never throws for
 *  simulation failures — exceptions become failure strings. */
std::string fuzzCheck(const FuzzProgram &p);

/** Greedy delta-debug shrink: remove uop chunks (and the fault) while
 *  fuzzCheck still fails, spending at most `budget` check calls.
 *  Returns the smallest failing program found (== p if nothing can be
 *  removed). Precondition: fuzzCheck(p) is non-empty. */
FuzzProgram fuzzShrink(const FuzzProgram &p, int budget = 400);

/** Text corpus round-trip (the .txt entries under tests/corpus). */
std::string fuzzSerialize(const FuzzProgram &p);
/** Throws TraceError on malformed input. */
FuzzProgram fuzzParse(const std::string &text);

/** Emit `p` as a .savtrc trace file (kernel name `name`), replayable
 *  with `save-trace inspect/replay`. The injected fault, if any, is
 *  not representable in the trace format and is dropped. */
void fuzzWriteTrace(const FuzzProgram &p, const std::string &path,
                    const std::string &name);

} // namespace save

#endif // SAVE_SIM_FUZZ_H
