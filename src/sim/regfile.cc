#include "sim/regfile.h"

#include "util/logging.h"

namespace save {

PhysRegFile::PhysRegFile(int num_regs) : num_regs_(num_regs)
{
    regs_.resize(static_cast<size_t>(num_regs));
    free_.reserve(static_cast<size_t>(num_regs));
    for (int i = num_regs - 1; i >= 0; --i)
        free_.push_back(i);
}

int
PhysRegFile::alloc()
{
    if (free_.empty())
        return kNoReg;
    int idx = free_.back();
    free_.pop_back();
    regs_[static_cast<size_t>(idx)].ready = 0;
    return idx;
}

void
PhysRegFile::release(int idx)
{
    SAVE_ASSERT(idx >= 0 && idx < num_regs_, "bad phys reg ", idx);
    free_.push_back(idx);
}

const VecReg &
PhysRegFile::value(int idx) const
{
    return regs_[static_cast<size_t>(idx)].value;
}

VecReg &
PhysRegFile::value(int idx)
{
    return regs_[static_cast<size_t>(idx)].value;
}

uint16_t
PhysRegFile::laneReady(int idx) const
{
    return regs_[static_cast<size_t>(idx)].ready;
}

bool
PhysRegFile::laneIsReady(int idx, int lane) const
{
    return (regs_[static_cast<size_t>(idx)].ready >> lane) & 1;
}

bool
PhysRegFile::fullyReady(int idx) const
{
    return regs_[static_cast<size_t>(idx)].ready == 0xffffu;
}

bool
PhysRegFile::setLaneReady(int idx, int lane)
{
    uint16_t &r = regs_[static_cast<size_t>(idx)].ready;
    bool was = r == 0xffffu;
    r |= static_cast<uint16_t>(1u << lane);
    return !was && r == 0xffffu;
}

bool
PhysRegFile::setAllReady(int idx)
{
    uint16_t &r = regs_[static_cast<size_t>(idx)].ready;
    bool was = r == 0xffffu;
    r = 0xffffu;
    return !was;
}

bool
PhysRegFile::publishLane(int idx, int lane, float v)
{
    regs_[static_cast<size_t>(idx)].value.setF32(lane, v);
    return setLaneReady(idx, lane);
}

bool
PhysRegFile::publishAll(int idx, const VecReg &v)
{
    regs_[static_cast<size_t>(idx)].value = v;
    return setAllReady(idx);
}

} // namespace save
