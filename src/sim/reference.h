/**
 * @file
 * Architectural reference executor: runs a uop trace sequentially, in
 * order, with the same zero-skip semantics the MGU defines. The OoO
 * core with any SAVE policy must produce bitwise-identical register
 * and memory state — this is the software-transparency property the
 * paper claims, and the oracle for the test suite.
 */

#ifndef SAVE_SIM_REFERENCE_H
#define SAVE_SIM_REFERENCE_H

#include <array>
#include <vector>

#include "isa/uop.h"
#include "isa/vec.h"

namespace save {

class MemoryImage;

/** In-order functional executor. */
class ArchExecutor
{
  public:
    explicit ArchExecutor(MemoryImage *image) : image_(image)
    {
        masks_.fill(0xffffu);
    }

    /** Execute every uop in order. */
    void run(const std::vector<Uop> &uops);

    void exec(const Uop &u);

    const VecReg &reg(int lreg) const
    {
        return regs_[static_cast<size_t>(lreg)];
    }

  private:
    MemoryImage *image_;
    std::array<VecReg, kLogicalVecRegs> regs_{};
    std::array<uint16_t, kLogicalMaskRegs> masks_{};
};

} // namespace save

#endif // SAVE_SIM_REFERENCE_H
