/**
 * @file
 * Configuration validation: every user-reachable config struct gets a
 * validate() that turns a bad field into an actionable ConfigError
 * instead of an assert-abort deep inside the simulator.
 */

#include "sim/config.h"

#include <string>

#include "util/error.h"

namespace save {

namespace {

void
requireAtLeast(const char *strct, const char *field, int value, int min)
{
    if (value < min)
        throw ConfigError(std::string(strct) + "." + field +
                          " must be >= " + std::to_string(min) +
                          " (got " + std::to_string(value) + ")");
}

void
requirePositive(const char *strct, const char *field, double value)
{
    if (!(value > 0))
        throw ConfigError(std::string(strct) + "." + field +
                          " must be > 0 (got " +
                          std::to_string(value) + ")");
}

void
requireNonNegative(const char *strct, const char *field, double value)
{
    if (!(value >= 0))
        throw ConfigError(std::string(strct) + "." + field +
                          " must be >= 0 (got " +
                          std::to_string(value) + ")");
}

} // namespace

void
SaveConfig::validate() const
{
    // RVC tracks rotated-copy usage in a per-register uint8_t bitmask,
    // so the R-state count is capped at 8.
    if (rotationStates < 1 || rotationStates > 8)
        throw ConfigError(
            "SaveConfig.rotationStates must be in [1, 8] (got " +
            std::to_string(rotationStates) + ")");
    requireAtLeast("SaveConfig", "hcExtraLatency", hcExtraLatency, 0);
    if (enabled && policy == SchedPolicy::Baseline && laneWiseDep)
        throw ConfigError(
            "SaveConfig.laneWiseDep requires a coalescing policy "
            "(policy is Baseline; set policy=VC/RVC/HC or disable "
            "laneWiseDep)");
}

void
MachineConfig::validate() const
{
    requireAtLeast("MachineConfig", "cores", cores, 1);
    requirePositive("MachineConfig", "freq2VpuGhz", freq2VpuGhz);
    requirePositive("MachineConfig", "freq1VpuGhz", freq1VpuGhz);
    requirePositive("MachineConfig", "uncoreGhz", uncoreGhz);
    requireAtLeast("MachineConfig", "issueWidth", issueWidth, 1);
    requireAtLeast("MachineConfig", "commitWidth", commitWidth, 1);
    requireAtLeast("MachineConfig", "rsEntries", rsEntries, 1);
    requireAtLeast("MachineConfig", "robEntries", robEntries, 1);
    // Renaming needs at least one free physical register beyond the
    // architectural set or allocation stalls forever.
    requireAtLeast("MachineConfig", "prfExtraRegs", prfExtraRegs, 1);
    requireAtLeast("MachineConfig", "numVpus", numVpus, 1);
    requireAtLeast("MachineConfig", "fp32FmaLatency", fp32FmaLatency, 1);
    requireAtLeast("MachineConfig", "mpFmaLatency", mpFmaLatency, 1);
    requireAtLeast("MachineConfig", "l1ReadPorts", l1ReadPorts, 1);
    requireAtLeast("MachineConfig", "bcachePorts", bcachePorts, 1);
    requireAtLeast("MachineConfig", "bcacheEntries", bcacheEntries, 1);
    requireAtLeast("MachineConfig", "l1SizeKb", l1SizeKb, 1);
    requireAtLeast("MachineConfig", "l1Ways", l1Ways, 1);
    requireAtLeast("MachineConfig", "l1LatCycles", l1LatCycles, 1);
    requireAtLeast("MachineConfig", "l2SizeKb", l2SizeKb, 1);
    requireAtLeast("MachineConfig", "l2Ways", l2Ways, 1);
    requireAtLeast("MachineConfig", "l2LatCycles", l2LatCycles, 1);
    requirePositive("MachineConfig", "l3SizeKbPerCore", l3SizeKbPerCore);
    requireAtLeast("MachineConfig", "l3Ways", l3Ways, 1);
    requireNonNegative("MachineConfig", "l3LatNs", l3LatNs);
    requireAtLeast("MachineConfig", "nocHopCycles", nocHopCycles, 0);
    requirePositive("MachineConfig", "dramGBps", dramGBps);
    requireAtLeast("MachineConfig", "dramChannels", dramChannels, 1);
    requireNonNegative("MachineConfig", "dramLatNs", dramLatNs);
    requireAtLeast("MachineConfig", "prefetchDegree", prefetchDegree, 0);
    requireAtLeast("MachineConfig", "exceptionServiceCycles",
                   exceptionServiceCycles, 0);
    requireAtLeast("MachineConfig", "watchdogCycles", watchdogCycles, 0);
}

} // namespace save
