#include "sim/auditor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "save/scheduler.h"
#include "sim/core.h"
#include "sim/mgu.h"
#include "util/error.h"

namespace save {

namespace {

uint64_t
envAuditStride()
{
    const char *env = std::getenv("SAVE_AUDIT_STRIDE");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        return 1;
    return static_cast<uint64_t>(v);
}

std::string
hex(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", v);
    return buf;
}

} // namespace

Auditor::Auditor(Core &core) : c_(core), stride_(envAuditStride())
{
    free_bm_.resize(static_cast<size_t>(core.prf.numRegs()));
    map_bm_.resize(static_cast<size_t>(core.prf.numRegs()));
    rs_mark_.resize(static_cast<size_t>(core.rs.capacity()));
    lane_bm_.resize(static_cast<size_t>(core.rob.capacity()) *
                    kVecLanes);
    lane_count_.resize(static_cast<size_t>(core.rob.capacity()));
}

void
Auditor::fail(const std::string &what) const
{
    SimContext ctx;
    ctx.coreId = c_.core_id_;
    ctx.cycle = static_cast<int64_t>(c_.cycle_);
    throw AuditError(std::string(when_) + ": " + what,
                     c_.pipelineSnapshot(), ctx);
}

void
Auditor::check(const char *when) const
{
    when_ = when;
    checkRob();
    checkRsLists();
    checkRobRsLink();
    checkPrf();
    checkWaiters();
    checkEventTargets();
    checkSaveState();
    checkLaneOrder();
    checkChains();
}

void
Auditor::checkRob() const
{
    const Rob &rob = c_.rob;
    int valid_slots = 0;
    for (int i = 0; i < rob.capacity(); ++i)
        if (rob.at(i).valid)
            ++valid_slots;
    if (valid_slots != rob.size())
        fail("ROB valid-slot count " + std::to_string(valid_slots) +
             " != size " + std::to_string(rob.size()));
    uint64_t prev_seq = 0;
    for (int i = 0; i < rob.size(); ++i) {
        const RobEntry &e = rob.at(rob.indexFromHead(i));
        if (!e.valid)
            fail("ROB entry " + std::to_string(i) +
                 " from head is invalid");
        if (i > 0 && e.seq <= prev_seq)
            fail("ROB seq order broken at entry " + std::to_string(i) +
                 " from head (seq " + std::to_string(e.seq) + ")");
        prev_seq = e.seq;
        if (e.uop.isVfma() && e.done != (e.lanesPending == 0))
            fail("VFMA ROB entry seq " + std::to_string(e.seq) +
                 ": done=" + std::to_string(e.done) +
                 " but lanesPending=" + std::to_string(e.lanesPending));
        if (e.lanesPending < 0 || e.lanesPending > kVecLanes)
            fail("ROB entry seq " + std::to_string(e.seq) +
                 ": lanesPending out of range");
    }
}

void
Auditor::checkRsLists() const
{
    const Rs &rs = c_.rs;
    // Age list: every node valid, seq strictly increasing, exact size.
    std::fill(rs_mark_.begin(), rs_mark_.end(), 0);
    int n = 0;
    uint64_t prev_seq = 0;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        if (!e.valid)
            fail("RS age list holds invalid slot " +
                 std::to_string(idx));
        if (rs_mark_[static_cast<size_t>(idx)])
            fail("RS age list visits slot " + std::to_string(idx) +
                 " twice");
        rs_mark_[static_cast<size_t>(idx)] = 1;
        if (n > 0 && e.seq <= prev_seq)
            fail("RS age order broken at slot " + std::to_string(idx));
        prev_seq = e.seq;
        ++n;
    }
    if (n != rs.size())
        fail("RS age list length " + std::to_string(n) + " != size " +
             std::to_string(rs.size()));
    // No valid slot outside the age list.
    for (int idx = 0; idx < rs.capacity(); ++idx) {
        if (rs.at(idx).valid && !rs_mark_[static_cast<size_t>(idx)])
            fail("valid RS slot " + std::to_string(idx) +
                 " missing from the age list");
    }
    // The pending/issuable sublists partition the age list, each
    // age-ordered, with membership decided exactly by elmValid.
    for (int list = 0; list < 2; ++list) {
        int count = 0;
        prev_seq = 0;
        int head = list == 0 ? rs.firstPending() : rs.firstIssuable();
        for (int idx = head; idx != Rs::kEnd; idx = rs.nextInList(idx)) {
            const RsEntry &e = rs.at(idx);
            if (!e.valid)
                fail("RS sublist holds invalid slot " +
                     std::to_string(idx));
            if (rs_mark_[static_cast<size_t>(idx)] != 1)
                fail("RS slot " + std::to_string(idx) +
                     " on two scheduler sublists");
            rs_mark_[static_cast<size_t>(idx)] = 2;
            if (e.elmValid != (list == 1))
                fail("RS slot " + std::to_string(idx) + " on the " +
                     (list == 0 ? "pending" : "issuable") +
                     " sublist with elmValid=" +
                     std::to_string(e.elmValid));
            if (count > 0 && e.seq <= prev_seq)
                fail("RS sublist age order broken at slot " +
                     std::to_string(idx));
            prev_seq = e.seq;
            ++count;
        }
        int expect = list == 0 ? rs.pendingCount() : rs.issuableCount();
        if (count != expect)
            fail("RS sublist length " + std::to_string(count) +
                 " != recorded count " + std::to_string(expect));
    }
    for (int idx = 0; idx < rs.capacity(); ++idx) {
        if (rs.at(idx).valid && rs_mark_[static_cast<size_t>(idx)] != 2)
            fail("valid RS slot " + std::to_string(idx) +
                 " on no scheduler sublist");
    }
    if (rs.pendingCount() + rs.issuableCount() != rs.size())
        fail("RS sublist sizes do not sum to the RS size");
}

void
Auditor::checkRobRsLink() const
{
    const Rs &rs = c_.rs;
    const Rob &rob = c_.rob;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        if (e.robIdx < 0 || e.robIdx >= rob.capacity())
            fail("RS slot " + std::to_string(idx) +
                 ": robIdx out of range");
        const RobEntry &re = rob.at(e.robIdx);
        if (!re.valid || re.seq != e.seq)
            fail("RS slot " + std::to_string(idx) + " (seq " +
                 std::to_string(e.seq) +
                 ") references a dead/reused ROB slot");
        if (re.dstPhys != e.dstPhys)
            fail("RS/ROB dstPhys mismatch at seq " +
                 std::to_string(e.seq));
        if (re.done || re.lanesPending <= 0)
            fail("ROB entry seq " + std::to_string(e.seq) +
                 " complete while its RS entry is still live");
        if (!e.uop.isVfma())
            fail("non-VFMA uop in the RS at seq " +
                 std::to_string(e.seq));
        if (e.issued)
            fail("RS slot " + std::to_string(idx) +
                 " still live after whole-op issue");
    }
}

void
Auditor::checkPrf() const
{
    const PhysRegFile &prf = c_.prf;
    int nregs = prf.numRegs();
    std::fill(free_bm_.begin(), free_bm_.end(), 0);
    for (int r : prf.freeList()) {
        if (r < 0 || r >= nregs)
            fail("free list holds out-of-range register " +
                 std::to_string(r));
        if (free_bm_[static_cast<size_t>(r)])
            fail("register " + std::to_string(r) +
                 " on the free list twice");
        free_bm_[static_cast<size_t>(r)] = 1;
    }

    auto live = [&](int r, const char *what) {
        if (r < 0 || r >= nregs)
            fail(std::string(what) + " references out-of-range "
                 "register " + std::to_string(r));
        if (free_bm_[static_cast<size_t>(r)])
            fail(std::string(what) + " references register " +
                 std::to_string(r) + " which is on the free list");
    };

    // Rename map: in range, not free, injective.
    std::fill(map_bm_.begin(), map_bm_.end(), 0);
    std::vector<uint8_t> &mapped = map_bm_;
    for (int l = 0; l < kLogicalVecRegs; ++l) {
        int p = c_.renamer_.mapOf(l);
        live(p, "rename map");
        if (mapped[static_cast<size_t>(p)])
            fail("two logical registers map to physical register " +
                 std::to_string(p));
        mapped[static_cast<size_t>(p)] = 1;
    }

    const Rs &rs = c_.rs;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        if (e.pa != kNoReg)
            live(e.pa, "RS operand A");
        live(e.pb, "RS operand B");
        live(e.pc, "RS accumulator");
        live(e.dstPhys, "RS destination");
    }
    const Rob &rob = c_.rob;
    for (int i = 0; i < rob.size(); ++i) {
        const RobEntry &e = rob.at(rob.indexFromHead(i));
        if (e.dstPhys != kNoReg) {
            live(e.dstPhys, "ROB destination");
            mapped[static_cast<size_t>(e.dstPhys)] = 1;
        }
        if (e.oldPhys != kNoReg) {
            live(e.oldPhys, "ROB old mapping");
            mapped[static_cast<size_t>(e.oldPhys)] = 1;
        }
        if (e.storeSrcPhys != kNoReg)
            live(e.storeSrcPhys, "ROB store source");
    }
    // Leak check: every non-free register must be reachable as a
    // current mapping, an in-flight destination, or an in-flight
    // entry's to-be-freed old mapping — anything else can never be
    // released again.
    for (int r = 0; r < nregs; ++r) {
        if (!free_bm_[static_cast<size_t>(r)] &&
            !mapped[static_cast<size_t>(r)])
            fail("physical register " + std::to_string(r) +
                 " is neither free nor reachable (leaked)");
    }

    for (size_t p = 0; p < c_.vfma_dst_to_rs_.size(); ++p) {
        int phys = static_cast<int>(p);
        int rs_idx = c_.vfma_dst_to_rs_[p];
        if (rs_idx < 0)
            continue;
        live(phys, "vfma dst->RS map");
        if (rs_idx >= rs.capacity() || !rs.at(rs_idx).valid ||
            rs.at(rs_idx).dstPhys != phys)
            fail("vfma dst->RS map entry for register " +
                 std::to_string(phys) + " references a dead RS slot");
        if (!rs.at(rs_idx).uop.isMixedPrecision())
            fail("vfma dst->RS map entry for register " +
                 std::to_string(phys) + " is not mixed-precision");
    }
    for (size_t p = 0; p < c_.rotated_copies_.size(); ++p) {
        if (c_.rotated_copies_[p] != 0)
            live(static_cast<int>(p), "rotated-copy table");
    }
}

void
Auditor::checkWaiters() const
{
    const Rs &rs = c_.rs;
    for (size_t phys = 0; phys < c_.reg_waiters_.size(); ++phys) {
        const auto &ws = c_.reg_waiters_[phys];
        if (ws.empty())
            continue;
        if (c_.prf.fullyReady(static_cast<int>(phys)))
            fail("register " + std::to_string(phys) +
                 " fully ready with unconsumed waiters (missed "
                 "wakeup)");
        for (const Core::RegWaiter &w : ws) {
            if (w.rsIdx < 0 || w.rsIdx >= rs.capacity())
                fail("waiter on register " + std::to_string(phys) +
                     ": RS index out of range");
            const RsEntry &e = rs.at(w.rsIdx);
            if (!e.valid || e.seq != w.seq)
                fail("stale waiter on register " +
                     std::to_string(phys) + " (seq " +
                     std::to_string(w.seq) + ")");
            int src = w.src == Core::RegWaiter::Src::A   ? e.pa
                      : w.src == Core::RegWaiter::Src::B ? e.pb
                                                         : e.pc;
            if (src != static_cast<int>(phys))
                fail("waiter on register " + std::to_string(phys) +
                     " enlisted for a different source of seq " +
                     std::to_string(e.seq));
            bool already = w.src == Core::RegWaiter::Src::A ? e.aReady
                           : w.src == Core::RegWaiter::Src::B
                               ? e.bReady
                               : e.cReady;
            if (already)
                fail("waiter outlived readiness of register " +
                     std::to_string(phys) + " at seq " +
                     std::to_string(e.seq));
        }
    }
    checkBaselineReady();
}

void
Auditor::checkBaselineReady() const
{
    if (!c_.baseline_select_)
        return;
    const Rs &rs = c_.rs;
    // Soundness: every queue record references a live, fully-ready,
    // unissued entry, and the queue is age-ordered.
    uint64_t prev_seq = 0;
    size_t queued = 0;
    for (const auto &[seq, idx] : c_.baseline_ready_) {
        const RsEntry &e = rs.at(idx);
        if (!e.valid || e.seq != seq)
            fail("baseline ready queue references a dead RS slot "
                 "(seq " + std::to_string(seq) + ")");
        if (!e.aReady || !e.bReady || !e.cReady || e.issued)
            fail("baseline ready queue holds a not-ready entry at seq " +
                 std::to_string(seq));
        if (seq <= prev_seq && queued > 0)
            fail("baseline ready queue out of age order at seq " +
                 std::to_string(seq));
        prev_seq = seq;
        ++queued;
    }
    // Completeness: a fully-ready unissued VFMA missing from the queue
    // would never be selected (missed wakeup).
    size_t ready = 0;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        if (e.aReady && e.bReady && e.cReady && !e.issued)
            ++ready;
    }
    if (ready != queued)
        fail("baseline ready queue holds " + std::to_string(queued) +
             " entries but " + std::to_string(ready) +
             " RS entries are fully ready");
}

void
Auditor::checkEventTargets() const
{
    const Rob &rob = c_.rob;
    const Rs &rs = c_.rs;
    std::fill(lane_bm_.begin(), lane_bm_.end(), 0);
    std::fill(lane_count_.begin(), lane_count_.end(), 0);

    auto checkLaneTarget = [&](int phys, int lane, int rob_idx,
                               const char *what) {
        if (rob_idx < 0 || rob_idx >= rob.capacity())
            fail(std::string(what) + ": robIdx out of range");
        const RobEntry &re = rob.at(rob_idx);
        if (!re.valid)
            fail(std::string(what) +
                 " targets a squashed/retired ROB slot " +
                 std::to_string(rob_idx));
        if (re.done || re.lanesPending <= 0)
            fail(std::string(what) + " targets completed ROB seq " +
                 std::to_string(re.seq));
        if (re.dstPhys != phys)
            fail(std::string(what) + " register " +
                 std::to_string(phys) +
                 " != ROB destination at seq " +
                 std::to_string(re.seq));
        if (lane < 0 || lane >= kVecLanes)
            fail(std::string(what) + ": lane out of range");
        if (phys < 0 || phys >= c_.prf.numRegs() ||
            free_bm_[static_cast<size_t>(phys)])
            fail(std::string(what) + " targets freed register " +
                 std::to_string(phys));
        size_t key = static_cast<size_t>(rob_idx) * kVecLanes +
                     static_cast<size_t>(lane);
        if (lane_bm_[key])
            fail(std::string(what) + ": duplicate in-flight write to "
                 "lane " + std::to_string(lane) + " of ROB seq " +
                 std::to_string(re.seq));
        lane_bm_[key] = 1;
        ++lane_count_[static_cast<size_t>(rob_idx)];
    };

    size_t ring_total = 0;
    for (const auto &bucket : c_.pub_ring_) {
        ring_total += bucket.size();
        for (const Core::PendingPublish &p : bucket)
            checkLaneTarget(p.phys, p.lane, p.robIdx, "publish ring");
    }
    if (ring_total != c_.pub_count_)
        fail("publish-ring count " + std::to_string(c_.pub_count_) +
             " != bucket total " + std::to_string(ring_total));

    auto checkLoadReq = [&](const Core::LoadReq &req, const char *what) {
        if (req.toRs) {
            if (req.rsIdx < 0 || req.rsIdx >= rs.capacity())
                fail(std::string(what) + ": RS index out of range");
            const RsEntry &e = rs.at(req.rsIdx);
            if (!e.valid || e.seq != req.seq)
                fail(std::string(what) + " (broadcast operand, seq " +
                     std::to_string(req.seq) +
                     ") targets a dead RS slot");
            if (e.pa != kNoReg || e.aReady)
                fail(std::string(what) + ": RS entry seq " +
                     std::to_string(e.seq) +
                     " not awaiting a broadcast operand");
        } else {
            if (req.robIdx < 0 || req.robIdx >= rob.capacity())
                fail(std::string(what) + ": robIdx out of range");
            const RobEntry &re = rob.at(req.robIdx);
            if (!re.valid || re.seq != req.seq)
                fail(std::string(what) + " (seq " +
                     std::to_string(req.seq) +
                     ") targets a dead ROB slot");
            if (re.done)
                fail(std::string(what) + " targets completed ROB seq " +
                     std::to_string(re.seq));
            if (re.dstPhys != req.dstPhys)
                fail(std::string(what) + " dstPhys mismatch at seq " +
                     std::to_string(re.seq));
        }
    };

    for (const Core::Event &ev : c_.events_.container()) {
        if (ev.kind == Core::Event::Publish)
            checkLaneTarget(ev.phys, ev.lane, ev.robIdx, "event heap");
        else
            checkLoadReq(ev.load, "in-flight load");
    }

    size_t load_ring_total = 0;
    for (const auto &bucket : c_.load_ring_) {
        load_ring_total += bucket.size();
        for (const Core::LoadReq &req : bucket)
            checkLoadReq(req, "load ring");
    }
    if (load_ring_total != c_.load_ring_count_)
        fail("load-ring count " + std::to_string(c_.load_ring_count_) +
             " != bucket total " + std::to_string(load_ring_total));

    uint64_t prev_seq = 0;
    bool first = true;
    for (const Core::LoadReq &req : c_.load_queue_) {
        if (!first && req.seq <= prev_seq)
            fail("load queue out of program order at seq " +
                 std::to_string(req.seq));
        prev_seq = req.seq;
        first = false;
        checkLoadReq(req, "queued load");
    }

    for (const auto &v : c_.vpus) {
        v.forEachInFlight([&](const LaneWrite &w, uint64_t done) {
            (void)done;
            checkLaneTarget(w.dstPhys, w.lane, w.robIdx,
                            "VPU pipeline");
        });
    }
    // In-flight writes per entry can never exceed its unwritten lanes.
    for (int i = 0; i < rob.capacity(); ++i) {
        if (lane_count_[static_cast<size_t>(i)] >
            rob.at(i).lanesPending)
            fail("ROB seq " + std::to_string(rob.at(i).seq) + ": " +
                 std::to_string(lane_count_[static_cast<size_t>(i)]) +
                 " in-flight lane writes but only " +
                 std::to_string(rob.at(i).lanesPending) +
                 " lanes pending");
    }

    for (const Core::PendingStore &s : c_.pending_stores_) {
        if (s.robIdx < 0 || s.robIdx >= rob.capacity())
            fail("pending store: robIdx out of range");
        const RobEntry &re = rob.at(s.robIdx);
        if (!re.valid || !re.isStore)
            fail("pending store targets a non-store ROB slot " +
                 std::to_string(s.robIdx));
        if (re.done)
            fail("pending store at seq " + std::to_string(re.seq) +
                 " already marked done");
        if (re.storeSrcPhys != s.srcPhys)
            fail("pending store source mismatch at seq " +
                 std::to_string(re.seq));
    }

    // The in-flight store-line list is exactly the live ROB stores.
    int rob_stores = 0;
    for (int i = 0; i < rob.size(); ++i) {
        const RobEntry &re = rob.at(rob.indexFromHead(i));
        if (!re.isStore)
            continue;
        ++rob_stores;
        bool found = false;
        for (const Core::InflightStore &s : c_.inflight_store_lines_) {
            if (s.seq == re.seq) {
                if (s.line != lineOf(re.storeAddr))
                    fail("in-flight store line mismatch at seq " +
                         std::to_string(re.seq));
                found = true;
                break;
            }
        }
        if (!found)
            fail("ROB store seq " + std::to_string(re.seq) +
                 " missing from the in-flight store-line list");
    }
    if (rob_stores !=
        static_cast<int>(c_.inflight_store_lines_.size()))
        fail("in-flight store-line list has " +
             std::to_string(c_.inflight_store_lines_.size()) +
             " entries but the ROB holds " +
             std::to_string(rob_stores) + " live stores");
    prev_seq = 0;
    first = true;
    for (const Core::InflightStore &s : c_.inflight_store_lines_) {
        if (!first && s.seq <= prev_seq)
            fail("in-flight store-line list out of program order");
        prev_seq = s.seq;
        first = false;
    }
}

void
Auditor::checkSaveState() const
{
    const Rs &rs = c_.rs;
    bool save_on = c_.scfg.enabled &&
                   c_.scfg.policy != SchedPolicy::Baseline;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        std::string at = " at seq " + std::to_string(e.seq);
        if (!e.elmValid) {
            if (e.pendingMl || e.pendingAl || e.passPending ||
                e.alScheduled)
                fail("lane state set before ELM generation" + at);
            continue;
        }
        if (!save_on)
            fail("ELM generated under the baseline policy" + at);
        if (!e.aReady || !e.bReady)
            fail("ELM valid before multiplicands ready" + at);
        if (e.pendingAl & e.passPending)
            fail("lane both pending and pass-through (" +
                 hex(e.pendingAl & e.passPending) + ")" + at);
        if (e.uop.isMixedPrecision()) {
            uint32_t expect = elmMp(c_.operandA(e), c_.operandB(e),
                                    e.wm);
            if (expect == 0 && !c_.scfg.bsSkip) {
                for (int lane = 0; lane < kVecLanes; ++lane)
                    if ((e.wm >> lane) & 1)
                        expect |= 0x3u << (kMlPerAl * lane);
            }
            if (e.elm != expect)
                fail("mixed-precision ELM " + hex(e.elm) +
                     " disagrees with operand values (expected " +
                     hex(expect) + ")" + at);
            uint16_t elm_als = mpAlMask(e.elm);
            if (e.pendingMl & ~e.elm)
                fail("pending MLs outside the ELM" + at);
            if (e.pendingAl != mpAlMask(e.pendingMl))
                fail("pendingAl " + hex(e.pendingAl) +
                     " != AL projection of pendingMl " +
                     hex(mpAlMask(e.pendingMl)) + at);
            if (e.alScheduled & ~elm_als)
                fail("AL scheduled outside the effectual set" + at);
            if (e.alScheduled & e.pendingAl)
                fail("AL both scheduled and pending" + at);
            if (e.passPending & elm_als)
                fail("effectual AL marked pass-through" + at);
        } else {
            uint16_t expect = elmF32(c_.operandA(e), c_.operandB(e),
                                     e.wm);
            if (expect == 0 && !c_.scfg.bsSkip)
                expect = e.wm;
            if (e.elm >> 16)
                fail("FP32 ELM wider than 16 lanes" + at);
            if (e.elm != expect)
                fail("FP32 ELM " + hex(e.elm) +
                     " disagrees with operand values (expected " +
                     hex(expect) + ")" + at);
            if (e.elm & ~static_cast<uint32_t>(e.wm))
                fail("effectual lane outside the write mask" + at);
            if (e.pendingAl & ~e.elm)
                fail("pending AL outside the ELM" + at);
            if (e.passPending & e.elm)
                fail("effectual lane marked pass-through" + at);
            if (e.pendingMl || e.alScheduled)
                fail("mixed-precision state on an FP32 VFMA" + at);
        }
    }
}

void
Auditor::checkLaneOrder() const
{
    // Lane-wise dependence order (paper SecIV-C / Algorithm 1): a lane
    // may only have been scheduled — for computation or pass-through —
    // once its accumulator input lane was published. Ready bits are
    // monotonic while the source register is live, so the condition
    // must still hold now. Chain-linked mixed-precision entries take
    // the accumulator from the forwarded partial result instead
    // (SecV-B) and are checked through checkChains.
    const Rs &rs = c_.rs;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        if (!e.elmValid || e.chainId >= 0)
            continue;
        uint16_t started =
            static_cast<uint16_t>(~(e.pendingAl | e.passPending));
        uint16_t not_ready =
            static_cast<uint16_t>(~c_.prf.laneReady(e.pc));
        if (started & not_ready)
            fail("lanes " + hex(started & not_ready) + " of seq " +
                 std::to_string(e.seq) +
                 " scheduled before their accumulator lanes were "
                 "published (lane-wise dependence order)");
    }
}

void
Auditor::checkChains() const
{
    const VectorScheduler &s = *c_.sched_;
    const Rs &rs = c_.rs;
    bool chain_mode = c_.scfg.enabled && c_.scfg.mpCompress &&
                      c_.scfg.policy != SchedPolicy::Baseline;
    if (!chain_mode) {
        if (!s.chains_.empty())
            fail("accumulator chains exist without mixed-precision "
                 "compression");
        return;
    }
    // Live RS entry -> owning chain, for the at-most-one-node check.
    std::fill(rs_mark_.begin(), rs_mark_.end(), 0);
    for (const auto &[id, ch] : s.chains_) {
        if (ch.nodes.empty())
            fail("chain " + std::to_string(id) + " has no nodes");
        if (ch.frontSeq != ch.nodes.front().seq)
            fail("chain " + std::to_string(id) +
                 " frontSeq out of date");
        {
            const auto &n = ch.nodes.front();
            if (n.rsIdx < 0 || n.rsIdx >= rs.capacity() ||
                !rs.at(n.rsIdx).valid || rs.at(n.rsIdx).seq != n.seq)
                fail("chain " + std::to_string(id) +
                     " front node is stale (untrimmed)");
        }
        uint64_t prev_seq = 0;
        bool first = true;
        for (const auto &n : ch.nodes) {
            if (!first && n.seq <= prev_seq)
                fail("chain " + std::to_string(id) +
                     " nodes out of program order (cyclic forward)");
            prev_seq = n.seq;
            first = false;
            if (n.rsIdx < 0 || n.rsIdx >= rs.capacity())
                continue;
            const RsEntry &e = rs.at(n.rsIdx);
            if (!e.valid || e.seq != n.seq)
                continue; // released node, skipped by the cursors
            if (rs_mark_[static_cast<size_t>(n.rsIdx)])
                fail("RS slot " + std::to_string(n.rsIdx) +
                     " appears in two chain nodes");
            rs_mark_[static_cast<size_t>(n.rsIdx)] = 1;
            if (e.chainId != id)
                fail("chain " + std::to_string(id) + " node seq " +
                     std::to_string(n.seq) +
                     " carries chainId " + std::to_string(e.chainId));
            if (!e.uop.isMixedPrecision())
                fail("FP32 VFMA linked into accumulator chain " +
                     std::to_string(id));
        }
        for (int cur : ch.cursor) {
            if (cur < 0 || cur > static_cast<int>(ch.nodes.size()))
                fail("chain " + std::to_string(id) +
                     " cursor out of range");
        }
    }
    // Every live mixed-precision entry must be linked into exactly the
    // chain it names.
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx)) {
        const RsEntry &e = rs.at(idx);
        if (!e.uop.isMixedPrecision())
            continue;
        if (e.chainId < 0)
            fail("mixed-precision entry seq " + std::to_string(e.seq) +
                 " has no accumulator chain");
        if (!s.chains_.count(e.chainId))
            fail("entry seq " + std::to_string(e.seq) +
                 " names erased chain " + std::to_string(e.chainId));
        if (!rs_mark_[static_cast<size_t>(idx)])
            fail("entry seq " + std::to_string(e.seq) +
                 " missing from its chain's node list");
    }
}

void
Auditor::checkAfterSquash(uint64_t fault_seq) const
{
    when_ = "post-squash";
    auto young = [&](uint64_t seq, const char *what) {
        if (seq >= fault_seq)
            fail(std::string(what) + " still references squashed seq " +
                 std::to_string(seq) + " (fault seq " +
                 std::to_string(fault_seq) + ")");
    };
    const Rs &rs = c_.rs;
    for (int idx = rs.first(); idx != Rs::kEnd; idx = rs.next(idx))
        young(rs.at(idx).seq, "RS");
    const Rob &rob = c_.rob;
    for (int i = 0; i < rob.size(); ++i)
        young(rob.at(rob.indexFromHead(i)).seq, "ROB");
    for (const Core::LoadReq &req : c_.load_queue_)
        young(req.seq, "load queue");
    for (const Core::Event &ev : c_.events_.container()) {
        if (ev.kind == Core::Event::LoadDone)
            young(ev.load.seq, "in-flight load");
    }
    for (const auto &ws : c_.reg_waiters_)
        for (const Core::RegWaiter &w : ws)
            young(w.seq, "register waiter list");
    for (const Core::InflightStore &s : c_.inflight_store_lines_)
        young(s.seq, "in-flight store-line list");
    check("post-squash");
}

} // namespace save
