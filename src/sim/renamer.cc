#include "sim/renamer.h"

#include "util/logging.h"

namespace save {

Renamer::Renamer(PhysRegFile *prf) : prf_(prf)
{
    for (int i = 0; i < kLogicalVecRegs; ++i) {
        int p = prf_->alloc();
        SAVE_ASSERT(p != kNoReg, "PRF too small for architectural state");
        prf_->publishAll(p, VecReg{});
        map_[static_cast<size_t>(i)] = p;
    }
    masks_.fill(0xffffu);
}

int
Renamer::mapOf(int lreg) const
{
    SAVE_ASSERT(lreg >= 0 && lreg < kLogicalVecRegs, "bad lreg ", lreg);
    return map_[static_cast<size_t>(lreg)];
}

Renamer::Renamed
Renamer::renameDst(int lreg)
{
    int fresh = prf_->alloc();
    if (fresh == kNoReg)
        return {kNoReg, kNoReg};
    int old = map_[static_cast<size_t>(lreg)];
    map_[static_cast<size_t>(lreg)] = fresh;
    return {fresh, old};
}

void
Renamer::setArchValue(int lreg, const VecReg &v)
{
    prf_->publishAll(mapOf(lreg), v);
}

const VecReg &
Renamer::archValue(int lreg) const
{
    return prf_->value(mapOf(lreg));
}

uint16_t
Renamer::mask(int kreg) const
{
    SAVE_ASSERT(kreg >= 0 && kreg < kLogicalMaskRegs, "bad kreg ", kreg);
    return masks_[static_cast<size_t>(kreg)];
}

void
Renamer::setMask(int kreg, uint16_t v)
{
    SAVE_ASSERT(kreg >= 0 && kreg < kLogicalMaskRegs, "bad kreg ", kreg);
    masks_[static_cast<size_t>(kreg)] = v;
}

} // namespace save
