/**
 * @file
 * Lightweight statistics package: named scalar counters, distributions,
 * and formatted text tables for bench output.
 */

#ifndef SAVE_STATS_STATS_H
#define SAVE_STATS_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace save {

/** A group of named scalar statistics owned by one simulated component. */
class StatGroup
{
  public:
    /** Add delta to the named counter, creating it at zero if absent. */
    void add(const std::string &name, double delta = 1.0);

    /** Overwrite the named value. */
    void set(const std::string &name, double value);

    /** Read a counter; zero if it was never touched. */
    double get(const std::string &name) const;

    /** True if the counter exists. */
    bool has(const std::string &name) const;

    /**
     * Stable pointer to the named counter (created at zero if absent),
     * for hot paths that would otherwise pay a string lookup per add.
     * std::map nodes never move, so the pointer stays valid until
     * clear() is called; callers must re-acquire after clear().
     */
    double *handle(const std::string &name) { return &values_[name]; }

    /** Reset all counters to zero. Invalidates handle() pointers. */
    void clear();

    /** Merge another group into this one by summing matching names. */
    void merge(const StatGroup &other);

    const std::map<std::string, double> &all() const { return values_; }

    /** Render "name value" lines, sorted by name. */
    std::string dump(const std::string &prefix = "") const;

    /**
     * Render a stable-ordered (alphabetical) JSON object. Integral
     * values print without a fraction; everything else uses %.17g so
     * the text round-trips bit-exactly. Names are emitted verbatim
     * (stat names are identifier-like; nothing needs escaping).
     */
    std::string toJson(const std::string &indent = "") const;

  private:
    std::map<std::string, double> values_;
};

/**
 * Cached reference to one StatGroup counter for hot paths. The handle
 * is resolved lazily on the first add(), so a counter that never fires
 * is never created — exactly the semantics of StatGroup::add — while
 * subsequent adds are a pointer bump instead of a string-map lookup.
 */
class StatRef
{
  public:
    StatRef() = default;
    StatRef(StatGroup *group, const char *name)
        : g_(group), name_(name)
    {
    }

    void
    add(double delta = 1.0)
    {
        if (!p_)
            p_ = g_->handle(name_);
        *p_ += delta;
    }

  private:
    StatGroup *g_ = nullptr;
    const char *name_ = "";
    double *p_ = nullptr;
};

/** Fixed-bucket histogram, used e.g. for the Fig. 16 speedup-cap bins. */
class Histogram
{
  public:
    /**
     * @param edges Ascending bucket edges; bucket i covers
     *              [edges[i], edges[i+1]). Values below edges[0] or at or
     *              above edges.back() land in saturating end buckets.
     */
    explicit Histogram(std::vector<double> edges);

    void sample(double value);

    int bucketCount() const { return static_cast<int>(counts_.size()); }
    uint64_t count(int bucket) const { return counts_.at(bucket); }
    uint64_t totalSamples() const { return total_; }

    /** Human-readable "lo-hi: n" label for a bucket. */
    std::string bucketLabel(int bucket) const;

  private:
    std::vector<double> edges_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/** Simple left-aligned text table for bench/report output. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    static std::string fmt(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace save

#endif // SAVE_STATS_STATS_H
