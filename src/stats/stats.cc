#include "stats/stats.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace save {

void
StatGroup::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatGroup::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatGroup::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

void
StatGroup::clear()
{
    values_.clear();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other.values_)
        values_[name] += value;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : values_)
        os << prefix << name << " " << value << "\n";
    return os.str();
}

std::string
StatGroup::toJson(const std::string &indent) const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, value] : values_) {
        out += first ? "" : ",";
        first = false;
        if (!indent.empty()) {
            out += "\n";
            out += indent;
        }
        char buf[64];
        bool integral = value == static_cast<double>(
                                     static_cast<int64_t>(value)) &&
                        value >= -9.0e15 && value <= 9.0e15;
        std::snprintf(buf, sizeof(buf), integral ? "%.0f" : "%.17g",
                      value);
        out += "\"" + name + "\": " + buf;
    }
    if (!indent.empty() && !first)
        out += "\n";
    out += "}";
    return out;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges))
{
    SAVE_ASSERT(edges_.size() >= 2, "histogram needs at least one bucket");
    SAVE_ASSERT(std::is_sorted(edges_.begin(), edges_.end()),
                "histogram edges must ascend");
    counts_.assign(edges_.size() - 1, 0);
}

void
Histogram::sample(double value)
{
    ++total_;
    if (value < edges_.front()) {
        ++counts_.front();
        return;
    }
    if (value >= edges_.back()) {
        ++counts_.back();
        return;
    }
    auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    ++counts_[static_cast<size_t>(it - edges_.begin()) - 1];
}

std::string
Histogram::bucketLabel(int bucket) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f-%.1f", edges_.at(bucket),
                  edges_.at(bucket + 1));
    return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SAVE_ASSERT(cells.size() == header_.size(),
                "row width ", cells.size(), " != header ", header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace save
