/**
 * @file
 * Table II reproduction: SAVE's storage structures at 22nm.
 *
 * Sizes are computed from first principles:
 *  - temp bookkeeping per VPU: one source id per lane per pipeline
 *    stage, V * P * log2(N_RS) bits (paper SecIII); the
 *    mixed-precision pipeline tracks multiplicand lanes (32) over the
 *    deeper 6-stage pipe.
 *  - B$ with masks: per entry one tag + one zero bit per element.
 *  - B$ with data: per entry one tag + a 64B line.
 *
 * Leakage power and access energy come from the paper's CACTI 7.0
 * runs at 22nm; CACTI is external tooling, so those two columns are
 * reproduced as the paper's reported constants (DESIGN.md
 * substitution 4).
 */

#include "bench_util.h"
#include "mem/broadcast_cache.h"
#include "mem/memory_image.h"
#include "stats/stats.h"
#include "util/bitutil.h"

using namespace save;

namespace {

uint64_t
tempBookkeepingBytes(int lanes, int pipe_stages, int rs_entries)
{
    return static_cast<uint64_t>(lanes) *
           static_cast<uint64_t>(pipe_stages) *
           static_cast<uint64_t>(ceilLog2(
               static_cast<uint64_t>(rs_entries))) /
           8;
}

} // namespace

static int
run()
{
    MachineConfig m;
    MemoryImage img;
    BroadcastCache bc_mask(BcastCacheKind::Mask, m.bcacheEntries, &img);
    BroadcastCache bc_data(BcastCacheKind::Data, m.bcacheEntries, &img);

    uint64_t t_fp32 =
        tempBookkeepingBytes(kVecLanes, m.fp32FmaLatency, m.rsEntries);
    uint64_t t_mp =
        tempBookkeepingBytes(kMlLanes, m.mpFmaLatency, m.rsEntries);

    std::printf("Table II: Storage structures in SAVE modeled at "
                "22nm.\n\n");
    TextTable t({"structure", "FP32-only size", "FP32+MP size",
                 "P_leak", "E_access"});
    t.addRow({"T per VPU", std::to_string(t_fp32) + "B",
              std::to_string(t_mp) + "B", "n/a", "n/a"});
    // Mask payload: 16 bits (FP32 elements) or 32 bits (BF16 elements).
    uint64_t mask_fp32 = bc_mask.storageBytes();
    uint64_t mask_mp = static_cast<uint64_t>(m.bcacheEntries) *
                       (42 + 32 + 1) / 8;
    t.addRow({"B$ w/ mask", std::to_string(mask_fp32) + "B",
              std::to_string(mask_mp) + "B", "0.24/0.29mW",
              "2.9e-4/3.8e-4nJ"});
    t.addRow({"B$ w/ data", std::to_string(bc_data.storageBytes()) + "B",
              std::to_string(bc_data.storageBytes()) + "B", "3.2mW",
              "1.6e-2nJ"});
    std::printf("%s\n", t.render().c_str());

    std::printf("Paper reference values: T 56B/168B; B$ mask "
                "276B/340B; B$ data 2260B. Power/energy columns are "
                "the paper's CACTI 7.0 @22nm constants.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(); });
}
