/**
 * @file
 * Ablation: how many rotational states does rotate-vertical
 * coalescing need? The paper fixes 3 (shift by -1/0/+1) to bound the
 * rotator cost and argues it triples the effective combination
 * window. We sweep the state count on the worst-case kernel (28
 * accumulators sharing one B register, effective CW ~ 1) to show the
 * marginal value of more states.
 */

#include "bench_util.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 3);

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet3_2b"),
                                     Phase::BwdInput, net.batch);
    Engine base(m, SaveConfig::baseline());
    BenchResultCache rcache(flags);
    GemmConfig dense = sliceFor(spec, Precision::Fp32, 0, 0, flags);
    auto rb = rcache.run(base, dense, 1, 2);

    std::printf("Rotation-state ablation on %s (%dx%d, CW~1), 1 VPU, "
                "speedup over 2-VPU baseline:\n\n",
                spec.name.c_str(), spec.shape.mr,
                spec.shape.nrVecs * 16);
    std::printf("%-12s", "NBS");
    for (int w = 0; w < 10; w += step)
        std::printf(" %5d%%", w * 10);
    std::printf("\n");

    for (int states : {1, 2, 3, 5, 7}) {
        SaveConfig s;
        s.rotationStates = states;
        Engine e(m, s);
        std::printf("%d state%s   ", states, states == 1 ? " " : "s");
        for (int w = 0; w < 10; w += step) {
            GemmConfig g = sliceFor(spec, Precision::Fp32, 0.0,
                                    w * 0.1, flags,
                                    91 + static_cast<uint64_t>(w));
            auto r = rcache.run(e, g, 1, 1);
            std::printf(" %6.2f", speedup(rb, r));
        }
        std::printf("\n");
    }
    std::printf("\n1 state degenerates to plain vertical coalescing; "
                "the paper's 3 states capture most of the benefit — "
                "additional states trade more rotator hardware for "
                "small returns.\n");
    maybePrintCacheStats(flags, rcache.store());
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
