/**
 * @file
 * save-serve: the simulation-as-a-service daemon (src/serve,
 * DESIGN.md §14). Binds a Unix-domain socket and serves gemm/fig14
 * simulation requests from save-ctl (or any ServeClient) until
 * drained by SIGTERM/SIGINT or a `save-ctl drain` request; SIGHUP
 * re-reads --config.
 *
 * Every SAVE_* environment knob is snapshotted once at startup into
 * a RuntimeOptions and then overridden by flags; the daemon never
 * consults the environment again, so concurrent sessions can never
 * race a setenv.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "serve/server.h"

using namespace save;

static void
printUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket=PATH [options]\n"
        "  --socket=PATH     Unix-domain socket to listen on "
        "(required)\n"
        "  --workers=N       serve worker threads, each its own "
        "session (default 2)\n"
        "  --queue-cap=N     admission-queue bound; past it requests "
        "are shed\n"
        "                    with a typed BUSY reply (default 8)\n"
        "  --threads=N       simulation fan-out threads shared by all "
        "sessions\n"
        "                    (default: SAVE_THREADS env or hardware)\n"
        "  --isolation=M     default slice isolation: none | thread | "
        "process\n"
        "                    (default: SAVE_ISOLATION env, then "
        "thread)\n"
        "  --cache-dir=D     shared content-addressed result store "
        "('none'\n"
        "                    disables; default: SAVE_CACHE_DIR env)\n"
        "  --cache-max-mb=N  store size cap, LRU-evicted (0 = env)\n"
        "  --worker-bin=P    explicit save-worker binary for "
        "--isolation=process\n"
        "  --config=FILE     key=value file re-read on SIGHUP "
        "(queue_cap=N)\n"
        "  --v1-compat       emulate a protocol-v1 daemon (advertise\n"
        "                    v1, reject batched SSHD jobs) — for "
        "version-skew tests\n"
        "\n"
        "Drains gracefully on SIGTERM/SIGINT (finishes queued and\n"
        "in-flight work, exits 0). `save-ctl drain` does the same "
        "remotely.\n",
        argv0);
}

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printUsage(argv[0]);
            return 0;
        }
    }
    try {
        Flags flags(argc, argv);
        RuntimeOptions rt = RuntimeOptions::fromEnv();
        int threads = flags.getInt("threads", 0);
        if (threads != 0)
            rt.threads = threads;
        std::string iso = flags.getStr("isolation", "");
        if (!iso.empty())
            rt.isolation = iso;
        std::string cache_dir = flags.getStr("cache-dir", "");
        if (!cache_dir.empty())
            rt.cacheDir = cache_dir;
        int cache_mb = flags.getInt("cache-max-mb", 0);
        if (cache_mb != 0)
            rt.cacheMaxMb = cache_mb;
        std::string worker_bin = flags.getStr("worker-bin", "");
        if (!worker_bin.empty())
            rt.workerBin = worker_bin;
        // Fail fast on a bad isolation string instead of at the first
        // request.
        rt.resolveIsolation();

        ServeServer::Options o;
        o.socketPath = flags.getStr("socket", "");
        o.workers = flags.getInt("workers", 2);
        o.queueCap = flags.getInt("queue-cap", 8);
        o.configPath = flags.getStr("config", "");
        o.v1Compat = flags.has("v1-compat");
        // Straggler-injection hook for the shard fault tests: sleep
        // this long before each shard point.
        if (const char *d = std::getenv("SAVE_SERVE_TEST_POINT_DELAY_MS"))
            o.testPointDelayMs = std::atoi(d);
        o.runtime = rt;
        ServeServer server(std::move(o));
        return server.run();
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n\n", e.what());
        printUsage(argv[0]);
        return 2;
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
