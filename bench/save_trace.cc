/**
 * @file
 * save-trace — the uop-trace command-line tool (format: src/trace,
 * DESIGN.md §9).
 *
 *   save-trace record  --out=F [workload flags]   capture a kernel run
 *   save-trace inspect --in=F [--uops=N]          show what a file holds
 *   save-trace replay  --in=F [--check]           re-run the pipeline
 *   save-trace diff    A B                        compare two traces
 *   save-trace stats   --in=F [--json]            recorded stat map
 *
 * `record` simulates one of the built-in kernel generators (a GEMM
 * slice, a conv layer slice, or an LSTM cell slice) and writes the
 * trace next to the result; `replay --check` proves the replay
 * reproduces the recorded cycle count and stat map bit-identically.
 * `--trace-events=F` (any subcommand that simulates) additionally
 * writes the Perfetto/Chrome pipeline event trace.
 */

#include "bench_util.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kernels/conv.h"
#include "kernels/lstm.h"
#include "trace/replay.h"
#include "trace/trace_reader.h"

using namespace save;

namespace {

void
printUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> [--flag=value ...]\n"
        "\n"
        "commands:\n"
        "  record   capture a kernel run into a trace file\n"
        "           --out=F         output trace file (required)\n"
        "           --kernel=K      gemm | conv | lstm (default gemm)\n"
        "           --policy=P      baseline | vc | rvc | hc (default "
        "rvc)\n"
        "           --precision=X   fp32 | bf16 (default fp32)\n"
        "           --bs=PCT        broadcasted (A) sparsity %% "
        "(default 0)\n"
        "           --nbs=PCT       non-broadcasted (B) sparsity %% "
        "(default 0)\n"
        "           --mr=N --nr=N   register tile (gemm kernel only)\n"
        "           --ksteps=N --tiles=N --cores=N --vpus=N --seed=N\n"
        "  inspect  print header, configuration and stream summary\n"
        "           --in=F          trace file (required)\n"
        "           --uops=N        also dump the first N uops per "
        "core\n"
        "  replay   run the recorded streams through the pipeline\n"
        "           --in=F          trace file (required)\n"
        "           --check         fail unless cycles + stats match "
        "the\n"
        "                           recorded result bit-identically\n"
        "  diff     compare two trace files (exit 1 when they differ)\n"
        "  stats    print the recorded stat map\n"
        "           --in=F          trace file (required)\n"
        "           --json          machine-readable "
        "(StatGroup::toJson)\n"
        "\n"
        "  --trace-events=F  write a Perfetto pipeline event trace of\n"
        "                    any simulation this command runs\n",
        argv0);
}

SaveConfig
policyFromName(const std::string &name)
{
    if (name == "baseline")
        return SaveConfig::baseline();
    SaveConfig sc;
    if (name == "vc")
        sc.policy = SchedPolicy::VC;
    else if (name == "rvc")
        sc.policy = SchedPolicy::RVC;
    else if (name == "hc")
        sc.policy = SchedPolicy::HC;
    else
        throw ConfigError("--policy must be baseline|vc|rvc|hc (got '" +
                          name + "')");
    return sc;
}

/** Slice configuration for --kernel=K from the record flags. */
GemmConfig
sliceFromFlags(const Flags &flags, const std::string &kernel,
               std::string *label)
{
    std::string prec_name = flags.getStr("precision", "fp32");
    if (prec_name != "fp32" && prec_name != "bf16")
        throw ConfigError("--precision must be fp32|bf16 (got '" +
                          prec_name + "')");
    Precision prec =
        prec_name == "bf16" ? Precision::Bf16 : Precision::Fp32;
    double bs = flags.getInt("bs", 0) / 100.0;
    double nbs = flags.getInt("nbs", 0) / 100.0;
    int ksteps = flags.getInt("ksteps", 64);
    uint64_t seed =
        static_cast<uint64_t>(flags.getInt("seed", 1));

    GemmConfig g;
    if (kernel == "gemm") {
        g.mr = flags.getInt("mr", g.mr);
        g.nrVecs = flags.getInt("nr", g.nrVecs);
        g.kSteps = ksteps;
        g.precision = prec;
        g.bsSparsity = bs;
        g.nbsSparsity = nbs;
        g.seed = seed;
    } else if (kernel == "conv") {
        // A fixed mid-network 3x3 layer; the slice models its forward
        // micro-kernel the way the figure benches do.
        ConvLayer layer;
        layer.name = "conv3x3_128";
        layer.inC = 128;
        layer.outC = 128;
        layer.ih = 28;
        layer.iw = 28;
        KernelSpec spec = makeConvKernel(layer, Phase::Forward, 32);
        g = spec.slice(prec, bs, nbs, ksteps, seed);
        *label = spec.name;
    } else if (kernel == "lstm") {
        LstmCell cell;
        cell.name = "lstm1024";
        KernelSpec spec = makeLstmKernel(cell, Phase::Forward);
        g = spec.slice(prec, bs, nbs, ksteps, seed);
        *label = spec.name;
    } else {
        throw ConfigError("--kernel must be gemm|conv|lstm (got '" +
                          kernel + "')");
    }
    g.tiles = flags.getInt("tiles", 2);
    if (label->empty())
        *label = kernel;
    return g;
}

std::string
requireIn(const Flags &flags)
{
    std::string in = flags.getStr("in", "");
    if (in.empty())
        throw ConfigError("--in=<trace file> is required");
    return in;
}

int
cmdRecord(const Flags &flags)
{
    std::string out = flags.getStr("out", "");
    if (out.empty())
        throw ConfigError("record needs --out=<trace file>");
    std::string kernel = flags.getStr("kernel", "gemm");
    std::string label;
    GemmConfig g = sliceFromFlags(flags, kernel, &label);
    SaveConfig sc = policyFromName(flags.getStr("policy", "rvc"));
    int cores = flags.getInt("cores", 1);
    int vpus = flags.getInt("vpus", 2);

    MachineConfig m;
    Engine engine(m, sc);
    KernelResult r = engine.recordGemm(g, out, label, cores, vpus);
    std::printf("recorded %s: %" PRIu64 " cycles (%.1f ns) -> %s\n",
                label.c_str(), r.cycles, r.timeNs, out.c_str());
    return 0;
}

int
cmdInspect(const Flags &flags)
{
    TraceReader r(requireIn(flags));
    std::printf("trace:       %s\n", r.path().c_str());
    std::printf("version:     %u\n", r.version());
    std::printf("config hash: %016" PRIx64 "\n", r.configHash());
    std::printf("kernel:      %s\n", r.kernelName().c_str());
    std::printf("cores:       %d  (vpus/core: %d)\n", r.cores(),
                r.vpus());
    uint64_t total = 0;
    for (int c = 0; c < r.cores(); ++c) {
        uint64_t n = r.uopCount(c);
        total += n;
        std::printf("core %-2d      %" PRIu64 " uops", c, n);
        auto warm = r.warmRanges(c);
        for (const auto &w : warm)
            std::printf("  warm [0x%" PRIx64 ", +%" PRIu64 ")", w.first,
                        w.second);
        std::printf("\n");
    }
    std::printf("total uops:  %" PRIu64 "\n", total);
    std::printf("elm sidecar: %s\n", r.hasElms() ? "yes" : "no");
    if (r.hasResult())
        std::printf("recorded:    %" PRIu64 " cycles @ %.2f GHz, %zu "
                    "stats\n",
                    r.recordedCycles(), r.recordedCoreGhz(),
                    r.recordedStats().size());
    else
        std::printf("recorded:    (no RES chunk)\n");

    int dump = flags.getInt("uops", 0);
    for (int c = 0; dump > 0 && c < r.cores(); ++c) {
        std::printf("-- core %d --\n", c);
        TraceFileSource src(r, c);
        Uop u;
        for (int i = 0; i < dump && src.next(u); ++i)
            std::printf("  %6d: %s\n", i, u.toString().c_str());
    }
    return 0;
}

int
cmdReplay(const Flags &flags)
{
    std::string in = requireIn(flags);
    ReplayOutcome out = replayTrace(in);
    std::printf("replayed %s: %" PRIu64 " cycles (%.1f ns)\n",
                out.name.c_str(), out.cycles, out.timeNs);
    if (!flags.has("check"))
        return 0;
    std::string diff = replayCheck(out);
    if (diff.empty()) {
        std::printf("check OK: cycles and %zu stats bit-identical to "
                    "the recording\n",
                    out.recordedStats.size());
        return 0;
    }
    std::fprintf(stderr, "check FAILED:\n%s\n", diff.c_str());
    return 1;
}

/** Structural comparison of two trace files. */
int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    TraceReader a(path_a);
    TraceReader b(path_b);
    int diffs = 0;
    auto report = [&](const std::string &line) {
        ++diffs;
        std::printf("%s\n", line.c_str());
    };

    if (a.configHash() != b.configHash())
        report("config hash differs");
    if (a.configText() != b.configText())
        report("configuration text differs");
    if (a.cores() != b.cores()) {
        report("core count differs: " + std::to_string(a.cores()) +
               " vs " + std::to_string(b.cores()));
    } else {
        for (int c = 0; c < a.cores(); ++c) {
            if (a.warmRanges(c) != b.warmRanges(c))
                report("core " + std::to_string(c) +
                       ": warm ranges differ");
            std::vector<Uop> ua = a.uops(c);
            std::vector<Uop> ub = b.uops(c);
            if (ua.size() != ub.size()) {
                report("core " + std::to_string(c) +
                       ": uop count differs: " +
                       std::to_string(ua.size()) + " vs " +
                       std::to_string(ub.size()));
                continue;
            }
            for (size_t i = 0; i < ua.size(); ++i) {
                if (std::memcmp(&ua[i], &ub[i], sizeof(Uop)) != 0) {
                    report("core " + std::to_string(c) + ": uop " +
                           std::to_string(i) + " differs:\n  a: " +
                           ua[i].toString() + "\n  b: " +
                           ub[i].toString());
                    break; // first divergence per core is enough
                }
            }
            if (a.hasElms() && b.hasElms() && a.elms(c) != b.elms(c))
                report("core " + std::to_string(c) +
                       ": ELM sidecar differs");
        }
    }
    if (a.hasElms() != b.hasElms())
        report(std::string("ELM sidecar present only in ") +
               (a.hasElms() ? "a" : "b"));
    if (a.hasResult() != b.hasResult()) {
        report(std::string("recorded result present only in ") +
               (a.hasResult() ? "a" : "b"));
    } else if (a.hasResult()) {
        if (a.recordedCycles() != b.recordedCycles())
            report("recorded cycles differ: " +
                   std::to_string(a.recordedCycles()) + " vs " +
                   std::to_string(b.recordedCycles()));
        if (a.recordedStats() != b.recordedStats())
            report("recorded stat maps differ");
    }

    if (diffs == 0) {
        std::printf("traces identical: %s == %s\n", path_a.c_str(),
                    path_b.c_str());
        return 0;
    }
    std::printf("%d difference(s)\n", diffs);
    return 1;
}

int
cmdStats(const Flags &flags)
{
    TraceReader r(requireIn(flags));
    if (!r.hasResult())
        throw TraceError("trace " + r.path() +
                         " has no recorded result (RES chunk)");
    StatGroup g;
    for (const auto &kv : r.recordedStats())
        g.set(kv.first, kv.second);
    g.set("cycles", static_cast<double>(r.recordedCycles()));
    if (flags.has("json"))
        std::printf("%s\n", g.toJson("  ").c_str());
    else
        std::printf("%s", g.dump().c_str());
    return 0;
}

int
run(int argc, char **argv)
{
    const std::string cmd = argv[1];
    Flags flags(argc, argv);

    if (cmd == "record")
        return cmdRecord(flags);
    if (cmd == "inspect")
        return cmdInspect(flags);
    if (cmd == "replay")
        return cmdReplay(flags);
    if (cmd == "stats")
        return cmdStats(flags);
    if (cmd == "diff") {
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i)
            if (std::strncmp(argv[i], "--", 2) != 0)
                files.push_back(argv[i]);
        if (files.size() != 2)
            throw ConfigError("diff needs exactly two trace files");
        return cmdDiff(files[0], files[1]);
    }
    throw ConfigError("unknown command '" + cmd + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printUsage(argv[0]);
            return 0;
        }
    }
    if (argc < 2) {
        printUsage(argv[0]);
        return 2;
    }
    int rc = benchMain(argc, argv, [&] { return run(argc, argv); });
    if (rc == 2) // ConfigError path printed the generic bench usage
        printUsage(argv[0]);
    return rc;
}
