/**
 * @file
 * save-ctl: command-line client for the save-serve daemon.
 *
 *   save-ctl ping   --socket=PATH            liveness probe
 *   save-ctl status --socket=PATH [--json]   daemon counters
 *   save-ctl drain  --socket=PATH            graceful shutdown
 *   save-ctl gemm   --socket=PATH [workload] one GEMM slice
 *   save-ctl fig14  --socket=PATH [knobs]    full Fig. 14 sweep
 *
 * A served fig14 sweep prints the report to stdout VERBATIM — byte-
 * identical to `bench_fig14` run in-process with the same knobs
 * (progress lines go to stderr). Exit codes: 0 ok, 1 daemon-side
 * error, 2 usage, 3 shed by admission control (BUSY — retry later).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "serve/client.h"

using namespace save;

namespace {

void
printUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <ping|status|drain|gemm|fig14> --socket=PATH "
        "[options]\n"
        "common options:\n"
        "  --socket=PATH     daemon socket (required)\n"
        "  --json            machine-readable output\n"
        "  --priority=P      admission class: high | normal | low\n"
        "  --deadline-ms=N   daemon-side wall-clock budget (0 = "
        "none)\n"
        "  --timeout-ms=N    client-side per-frame read timeout "
        "(-1 = wait)\n"
        "gemm workload (defaults in parentheses):\n"
        "  --mr=N (4)  --nr=N (6)  --ksteps=N (128)  --tiles=N (1)\n"
        "  --bs-pct=N (0)  --nbs-pct=N (0)  --seed=N (1)\n"
        "  --precision=fp32|bf16 (fp32)  --cores=N (1)  --vpus=N (2)\n"
        "fig14 knobs (defaults match bench_fig14):\n"
        "  --grid=N (3)  --ksteps=N (192)  --tiles=N (6)  --cores=N "
        "(1)\n"
        "  --seed=N (7)  --threads=N (0 = daemon pool)\n"
        "  --isolation=none|thread|process (daemon default)\n"
        "exit codes: 0 ok, 1 error, 2 usage, 3 busy (shed; retry)\n",
        argv0);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

ServePriority
parsePriority(const std::string &p)
{
    if (p == "high")
        return ServePriority::High;
    if (p == "normal" || p.empty())
        return ServePriority::Normal;
    if (p == "low")
        return ServePriority::Low;
    throw ConfigError("--priority expects high, normal, or low (got '" +
                      p + "')");
}

int
runCommand(int argc, char **argv)
{
    if (argc < 2) {
        printUsage(argv[0]);
        return 2;
    }
    const std::string cmd = argv[1];
    Flags flags(argc, argv);
    const std::string socket_path = flags.getStr("socket", "");
    if (socket_path.empty())
        throw ConfigError("--socket=PATH is required");
    const bool json = flags.has("json");
    const int timeout_ms = flags.getInt("timeout-ms", -1);

    ServeRequest req;
    req.priority = parsePriority(flags.getStr("priority", "normal"));
    req.deadlineMs =
        static_cast<uint32_t>(flags.getInt("deadline-ms", 0));

    if (cmd == "ping") {
        req.kind = ServeKind::Ping;
    } else if (cmd == "status") {
        req.kind = ServeKind::Status;
    } else if (cmd == "drain") {
        req.kind = ServeKind::Drain;
    } else if (cmd == "gemm") {
        req.kind = ServeKind::Gemm;
        req.gemm.mr = flags.getInt("mr", 4);
        req.gemm.nrVecs = flags.getInt("nr", 6);
        req.gemm.kSteps = flags.getInt("ksteps", 128);
        req.gemm.tiles = flags.getInt("tiles", 1);
        req.gemm.bsSparsity = flags.getInt("bs-pct", 0) / 100.0;
        req.gemm.nbsSparsity = flags.getInt("nbs-pct", 0) / 100.0;
        req.gemm.seed =
            static_cast<uint64_t>(flags.getInt("seed", 1));
        std::string prec = flags.getStr("precision", "fp32");
        if (prec == "bf16")
            req.gemm.precision = Precision::Bf16;
        else if (prec != "fp32")
            throw ConfigError("--precision expects fp32 or bf16 "
                              "(got '" +
                              prec + "')");
        req.cores = flags.getInt("cores", 1);
        req.vpus = flags.getInt("vpus", 2);
    } else if (cmd == "fig14") {
        req.kind = ServeKind::Fig14;
        req.fig14.gridStep = flags.getInt("grid", 3);
        req.fig14.kSteps = flags.getInt("ksteps", 192);
        req.fig14.tiles = flags.getInt("tiles", 6);
        req.fig14.cores = flags.getInt("cores", 1);
        req.fig14.seed =
            static_cast<uint64_t>(flags.getInt("seed", 7));
        req.fig14.threads = flags.getInt("threads", 0);
        req.fig14.isolation =
            fig14IsolationCode(flags.getStr("isolation", ""));
    } else {
        std::fprintf(stderr, "error: unknown command '%s'\n\n",
                     cmd.c_str());
        printUsage(argv[0]);
        return 2;
    }

    ServeClient client(socket_path);
    ServeClient::ProgressFn progress = [](const ServeProgress &p) {
        std::fprintf(stderr, "progress %u/%u %s\n", p.done, p.total,
                     p.key.c_str());
    };
    ServeClient::Reply reply = client.call(
        req, req.kind == ServeKind::Fig14 ? progress : nullptr,
        timeout_ms);

    if (reply.kind == ServeClient::Reply::Kind::Busy) {
        if (json)
            std::printf("{\"busy\":true,\"reason\":\"%s\",\"queued\":"
                        "%u,\"queueCap\":%u}\n",
                        jsonEscape(reply.busy.reason).c_str(),
                        reply.busy.queued, reply.busy.queueCap);
        else
            std::fprintf(stderr, "busy: %s\n",
                         reply.busy.reason.c_str());
        return 3;
    }
    if (reply.kind == ServeClient::Reply::Kind::Error) {
        if (json)
            std::printf("{\"error\":\"%s\"}\n",
                        jsonEscape(reply.error.what).c_str());
        else
            std::fprintf(stderr, "daemon error: %s\n",
                         reply.error.what.c_str());
        return 1;
    }

    switch (req.kind) {
    case ServeKind::Ping:
        if (json)
            std::printf("{\"ok\":true}\n");
        else
            std::printf("pong\n");
        break;
    case ServeKind::Drain:
        if (json)
            std::printf("{\"draining\":true}\n");
        else
            std::printf("drain acknowledged\n");
        break;
    case ServeKind::Status: {
        const ServeStatus &s = reply.status;
        if (json) {
            std::printf(
                "{\"version\":%u,\"workers\":%u,\"queueCap\":%u,"
                "\"queued\":%u,\"active\":%u,\"draining\":%u,"
                "\"reloads\":%u,\"accepted\":%llu,\"completed\":%llu,"
                "\"shed\":%llu,\"errors\":%llu,\"casHits\":%llu,"
                "\"casMisses\":%llu,\"casInserts\":%llu}\n",
                s.version, s.workers, s.queueCap, s.queued, s.active,
                s.draining, s.reloads,
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.casHits),
                static_cast<unsigned long long>(s.casMisses),
                static_cast<unsigned long long>(s.casInserts));
        } else {
            std::printf("save-serve v%u: %u worker(s), queue %u/%u, "
                        "%u active%s, %u reload(s)\n",
                        s.version, s.workers, s.queued, s.queueCap,
                        s.active, s.draining ? ", draining" : "",
                        s.reloads);
            std::printf("requests: %llu accepted, %llu completed, "
                        "%llu shed, %llu error(s)\n",
                        static_cast<unsigned long long>(s.accepted),
                        static_cast<unsigned long long>(s.completed),
                        static_cast<unsigned long long>(s.shed),
                        static_cast<unsigned long long>(s.errors));
            std::printf("cas: %llu hit(s), %llu miss(es), %llu "
                        "insert(s)\n",
                        static_cast<unsigned long long>(s.casHits),
                        static_cast<unsigned long long>(s.casMisses),
                        static_cast<unsigned long long>(s.casInserts));
        }
        break;
    }
    case ServeKind::Gemm:
        if (json)
            std::printf("{\"timeNs\":%.17g,\"cycles\":%llu,"
                        "\"coreGhz\":%.17g}\n",
                        reply.gemm.timeNs,
                        static_cast<unsigned long long>(
                            reply.gemm.cycles),
                        reply.gemm.coreGhz);
        else
            std::printf("time %.3f us, %llu cycles @ %.2f GHz\n",
                        reply.gemm.timeNs / 1e3,
                        static_cast<unsigned long long>(
                            reply.gemm.cycles),
                        reply.gemm.coreGhz);
        break;
    case ServeKind::Fig14:
        // Verbatim: stdout must diff clean against bench_fig14.
        if (json)
            std::printf("{\"report\":\"%s\"}\n",
                        jsonEscape(reply.text).c_str());
        else
            std::fputs(reply.text.c_str(), stdout);
        break;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printUsage(argv[0]);
            return 0;
        }
    }
    try {
        return runCommand(argc, argv);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n\n", e.what());
        printUsage(argv[0]);
        return 2;
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
