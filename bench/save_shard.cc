/**
 * @file
 * save-shard: distributed Fig. 14 sweep coordinator (src/shard,
 * DESIGN.md §15). Splits the sweep into point jobs and dispatches
 * them across in-process lanes and remote save-serve daemons
 * (protocol v2 SSHD batches), then merges the results through the
 * shared fig14 renderer.
 *
 * The merged stdout is byte-identical to `bench_fig14` for the same
 * knobs — for any backend mix, shard count, or fault schedule (CI
 * diffs it). Run-dependent counters go to stderr only.
 *
 * With --journal=PATH completed points are checkpointed in the exact
 * format bench_fig14 uses, so a coordinator killed mid-sweep resumes
 * recomputing nothing — and a bench journal resumes a distributed
 * run (and vice versa).
 */

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "shard/coordinator.h"

using namespace save;

static void
printUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --sockets=A,B,..  save-serve daemon sockets to dispatch "
        "batched\n"
        "                    shard jobs to (protocol v2; v1 daemons "
        "are\n"
        "                    excluded with a warning)\n"
        "  --inproc=N        in-process lanes over one shared session "
        "(default 1;\n"
        "                    0 relies entirely on the daemons)\n"
        "  --batch=N         max sweep points per daemon dispatch "
        "(default 4)\n"
        "  --max-attempts=N  per-point dispatch budget before a "
        "permanent\n"
        "                    failure (default 3)\n"
        "  --straggler-ms=N  speculatively re-dispatch points in "
        "flight longer\n"
        "                    than this (default 0: disabled)\n"
        "  --rpc-timeout-ms=N  per-frame RPC deadline, reset at each "
        "ack\n"
        "                    (default 120000)\n"
        "  --journal=PATH    crash-safe sweep journal, interchangeable "
        "with\n"
        "                    bench_fig14's ('none' disables; default: "
        "SAVE_JOURNAL)\n"
        "  --max-failures=N  tolerated permanent point failures before "
        "exit 1\n"
        "  --grid/--ksteps/--tiles/--cores/--seed  estimator knobs "
        "(must match\n"
        "                    the daemons' build; defaults match "
        "bench_fig14)\n"
        "  --threads=N       in-process fan-out threads (0 = env/"
        "hardware)\n"
        "  --isolation=M     in-process slice isolation: none | thread "
        "| process\n"
        "  --cache-dir=D     in-process content-addressed store "
        "('none' disables)\n"
        "  --cache-max-mb=N  store size cap (0 = env)\n"
        "  --cache-stats     print in-process store counters to "
        "stderr\n",
        argv0);
}

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);

    ShardCoordinator::Options o;
    o.sockets = shardParseSockets(flags.getStr("sockets", ""));
    o.inprocLanes = flags.getInt("inproc", 1);
    o.batch = flags.getInt("batch", 4);
    o.maxAttempts = flags.getInt("max-attempts", 3);
    o.stragglerMs = flags.getInt("straggler-ms", 0);
    o.rpcTimeoutMs = flags.getInt("rpc-timeout-ms", 120000);

    // The same knob plumbing as bench_fig14 / save-serve: snapshot
    // the environment once, then let flags override it.
    RuntimeOptions rt = RuntimeOptions::fromEnv();
    int threads = flags.getInt("threads", 0);
    if (threads != 0)
        rt.threads = threads;
    std::string iso = flags.getStr("isolation", "");
    if (!iso.empty())
        rt.isolation = iso;
    std::string cache_dir = flags.getStr("cache-dir", "");
    if (!cache_dir.empty())
        rt.cacheDir = cache_dir;
    int cache_mb = flags.getInt("cache-max-mb", 0);
    if (cache_mb != 0)
        rt.cacheMaxMb = cache_mb;
    std::string worker_bin = flags.getStr("worker-bin", "");
    if (!worker_bin.empty())
        rt.workerBin = worker_bin;
    rt.resolveIsolation();
    o.runtime = rt;

    o.knobs.gridStep = flags.getInt("grid", 3);
    o.knobs.kSteps = flags.getInt("ksteps", o.knobs.kSteps);
    o.knobs.tiles = flags.getInt("tiles", o.knobs.tiles);
    o.knobs.cores = flags.getInt("cores", o.knobs.cores);
    o.knobs.seed = static_cast<uint64_t>(
        flags.getInt("seed", static_cast<int>(o.knobs.seed)));

    SweepOptions sw = sweepOptions(flags);
    o.journalPath = sw.journalPath;

    ShardCoordinator coord(std::move(o));
    std::string report = coord.run();
    std::fputs(report.c_str(), stdout);

    const ShardCoordinator::Stats &st = coord.stats();
    if (!coord.stats().failures.empty() || st.requeues > 0 ||
        st.speculative > 0 || st.backendsExcluded > 0)
        std::fprintf(stderr,
                     "shard: %zu requeue(s), %zu speculative "
                     "re-dispatch(es), %zu backend(s) excluded\n",
                     st.requeues, st.speculative,
                     st.backendsExcluded);
    // The same summary/exit contract as SweepRunner::finish, so
    // resume tests and humans read one format.
    if (!sw.journalPath.empty())
        std::fprintf(stderr,
                     "journal %s: %zu point(s) resumed, %zu "
                     "computed\n",
                     sw.journalPath.c_str(), st.resumed, st.computed);
    if (!st.failures.empty()) {
        std::fprintf(stderr,
                     "%zu sweep point(s) failed permanently:\n",
                     st.failures.size());
        for (const ShardCoordinator::PermanentFailure &f : st.failures)
            std::fprintf(stderr, "  %s: %s (%d attempts)\n",
                         f.key.c_str(), f.reason.c_str(), f.attempts);
    }
    maybePrintCacheStats(flags, coord.resultStore());

    size_t total = st.failures.size();
    if (total == 0)
        return 0;
    if (total <= static_cast<size_t>(sw.maxFailures)) {
        std::fprintf(stderr,
                     "%zu failure(s) within --max-failures=%d; "
                     "exiting 0\n",
                     total, sw.maxFailures);
        return 0;
    }
    return 1;
}

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printUsage(argv[0]);
            return 0;
        }
    }
    try {
        return run(argc, argv);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n\n", e.what());
        printUsage(argv[0]);
        return 2;
    } catch (const DeadlockError &e) {
        std::fprintf(stderr, "error: %s\n%s", e.what(),
                     e.snapshot().c_str());
        return 1;
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
