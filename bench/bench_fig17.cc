/**
 * @file
 * Fig. 17 reproduction: broadcast-cache designs on an
 * embedded-broadcast kernel — the FP32 back-propagation of weights of
 * ResNet3_2 with 2 VPUs — at 0% and 40% broadcasted sparsity, swept
 * over non-broadcasted sparsity.
 */

#include "bench_util.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 1);
    SweepRunner runner(flags, "fig17",
                       {step, flags.getInt("ksteps", 192),
                        flags.getInt("tiles", 6)});

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet3_2b"),
                                     Phase::BwdWeights, net.batch);
    std::printf("kernel %s: %dx%d %s\n\n", spec.name.c_str(),
                spec.shape.mr, spec.shape.nrVecs * 16,
                spec.shape.pattern == BroadcastPattern::Embedded
                    ? "embedded-broadcast"
                    : "explicit-broadcast");

    Engine base(m, SaveConfig::baseline());
    BenchResultCache rcache(flags);
    GemmConfig dense = sliceFor(spec, Precision::Fp32, 0, 0, flags);
    auto rb = rcache.run(base, dense, 1, 2);

    struct Design
    {
        BcastCacheKind kind;
        const char *label;
    };
    const Design designs[] = {
        {BcastCacheKind::None, "No B$"},
        {BcastCacheKind::Mask, "B$ w/ masks"},
        {BcastCacheKind::Data, "B$ w/ data"},
    };

    // Fan the independent (BS, design, NBS) simulations across the
    // host thread pool, then print the grid serially in order.
    struct Point
    {
        double bs;
        BcastCacheKind kind;
        int w;
    };
    std::vector<Point> points;
    for (double bs : {0.0, 0.4})
        for (const Design &d : designs)
            for (int w = 0; w < 10; w += step)
                points.push_back({bs, d.kind, w});

    std::vector<double> speedups = parallelSweep(
        static_cast<int>(points.size()), [&](int i) {
            const Point &p = points[static_cast<size_t>(i)];
            std::string key =
                "bs" + std::to_string(p.bs) + "/bc" +
                std::to_string(static_cast<int>(p.kind)) + "/w" +
                std::to_string(p.w);
            return runner.point<double>(key, [&] {
                SaveConfig s;
                s.bcache = p.kind;
                Engine e(m, s);
                GemmConfig g = sliceFor(
                    spec, Precision::Fp32, p.bs, p.w * 0.1, flags,
                    31 + static_cast<uint64_t>(p.w));
                return speedup(rb, rcache.run(e, g, 1, 2));
            });
        });

    size_t next = 0;
    for (double bs : {0.0, 0.4}) {
        std::printf("BS = %s:\n%-13s", fmtPct(bs), "NBS");
        for (int w = 0; w < 10; w += step)
            std::printf(" %5d%%", w * 10);
        std::printf("\n");
        for (const Design &d : designs) {
            std::printf("%-13s", d.label);
            for (int w = 0; w < 10; w += step)
                std::printf(" %6.2f", speedups[next++]);
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("Paper: without a B$ there is no speedup at any "
                "sparsity; the data design keeps gaining with NBS "
                "while the mask design is limited by L1 bandwidth on "
                "non-zero broadcasts.\n");
    maybePrintCacheStats(flags, rcache.store());
    return runner.finish();
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
