/**
 * @file
 * Table III reproduction: which sparsity types (broadcasted BS /
 * non-broadcasted NBS) each network exhibits per training phase.
 *
 * Derived from the operand-role model the estimator uses (activations
 * broadcast, weights/gradients in vector lanes) evaluated late in
 * training, mirroring SecVI's Table III.
 */

#include <algorithm>

#include "bench_util.h"
#include "stats/stats.h"

using namespace save;

namespace {

struct Presence
{
    bool bs = false;
    bool nbs = false;
};

const char *
mark(bool b)
{
    return b ? "X" : ".";
}

} // namespace

static int
run()
{
    std::printf("Table III: Types of sparsity in the evaluated "
                "networks (X = present).\n\n");

    TextTable cnn({"CNN", "fwd BS", "fwd NBS", "bwd-in BS", "bwd-in NBS",
                   "bwd-w BS", "bwd-w NBS"});
    for (const NetworkModel &net :
         {vgg16Dense(), resnet50Dense(), resnet50Pruned()}) {
        ActivationProfile act = net.profile();
        int64_t step = net.steps() - 1;
        double ws = net.schedule.sparsityAt(step);
        Presence fwd, bwd_in, bwd_w;
        for (int i = 1; i < net.numKernels(); ++i) {
            double a = act.at(i, step);
            double grad = net.sparseGradients
                ? act.at(std::min(i + 1, net.numKernels() - 1), step)
                : 0.0;
            fwd.bs |= a > 0;
            fwd.nbs |= ws > 0;
            bwd_in.bs |= grad > 0;
            bwd_in.nbs |= ws > 0;
            bwd_w.bs |= a > 0;
            bwd_w.nbs |= grad > 0;
        }
        cnn.addRow({net.name, mark(fwd.bs), mark(fwd.nbs),
                    mark(bwd_in.bs), mark(bwd_in.nbs), mark(bwd_w.bs),
                    mark(bwd_w.nbs)});
    }
    std::printf("%s\n", cnn.render().c_str());

    TextTable lstm({"LSTM", "fwd BS", "fwd NBS", "bwd BS", "bwd NBS"});
    {
        NetworkModel net = gnmtPruned();
        ActivationProfile act = net.profile();
        int64_t step = net.steps() - 1;
        double ws = net.schedule.sparsityAt(step);
        double a = act.at(1, step);
        lstm.addRow({net.name, mark(a > 0), mark(ws > 0), mark(a > 0),
                     mark(ws > 0)});
    }
    std::printf("%s\n", lstm.render().c_str());

    std::printf(
        "Paper: dense VGG16 -> fwd BS, bwd-in BS, bwd-w BS+NBS; dense "
        "ResNet-50 -> fwd BS, bwd-w BS; pruned ResNet-50 -> fwd BS+NBS, "
        "bwd-in NBS only, bwd-w BS; pruned GNMT -> all four.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(); });
}
