/**
 * @file
 * Methodology validation (DESIGN.md substitution 5): the figure
 * benches estimate layer time as steady-state-slice time x MAC scale,
 * with the B panel pre-warmed into L3. Here we simulate complete
 * cache-blocked layer GEMMs — cold B, real panel loop, real store
 * traffic — and compare against the slice extrapolation, for the
 * baseline and for SAVE.
 */

#include <memory>

#include "bench_util.h"
#include "sim/multicore.h"

using namespace save;

namespace {

double
runWorkload(const SaveConfig &scfg, const GemmWorkload &w,
            MemoryImage &image, bool warm_b)
{
    MachineConfig m;
    m.cores = 1;
    m.dramGBps /= 28.0;
    Multicore mc(m, scfg, 2, &image);
    // Paper warm-up: A (the producing phase's output) is hot in L3;
    // B is only pre-warmed for the steady-state slices.
    for (uint64_t off = 0; off < w.aBytes; off += kLineBytes)
        mc.hierarchy().warmL3(w.aBase + off);
    if (warm_b)
        for (uint64_t off = 0; off < w.bBytes; off += kLineBytes)
            mc.hierarchy().warmL3(w.bBase + off);
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    uint64_t cycles = mc.run(1'000'000'000);
    return static_cast<double>(cycles) / m.coreFreqGhz(2);
}

} // namespace

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int panels = flags.getInt("panels", 8);
    int tiles = flags.getInt("tiles", 24);
    int ksteps = flags.getInt("ksteps", 128);

    std::printf("Slice-extrapolation vs full blocked-layer "
                "simulation (7x48 embedded kernel, one core's share "
                "of the machine).\n\n");
    std::printf("full layer: %d N-panels x %d M-tiles x %d K steps "
                "(B cold, %d KB streamed)\n\n",
                panels, tiles, ksteps,
                panels * ksteps * 3 * 64 / 1024);
    std::printf("%-8s %-10s %-12s %-12s %-8s %-10s\n", "NBS", "config",
                "full(us)", "slice est.", "error", "speedup f/s");

    for (double nbs : {0.0, 0.5, 0.8}) {
        GemmConfig g;
        g.mr = 7;
        g.nrVecs = 3;
        g.kSteps = ksteps;
        g.tiles = tiles;
        g.pattern = BroadcastPattern::Embedded;
        g.nbsSparsity = nbs;
        g.seed = 400 + static_cast<uint64_t>(nbs * 10);

        // Slice: the estimator's configuration (fewer tiles, warm B).
        GemmConfig slice = g;
        slice.tiles = 6;
        double scale = static_cast<double>(panels) *
                       static_cast<double>(g.tiles) / slice.tiles;

        double full_base, full_save, est_base, est_save;
        {
            MemoryImage img;
            GemmWorkload w = buildBlockedGemm(g, panels, img);
            full_base = runWorkload(SaveConfig::baseline(), w, img,
                                    false);
        }
        {
            MemoryImage img;
            GemmWorkload w = buildBlockedGemm(g, panels, img);
            full_save = runWorkload(SaveConfig{}, w, img, false);
        }
        {
            MemoryImage img;
            GemmWorkload w = buildGemm(slice, img);
            est_base =
                scale *
                runWorkload(SaveConfig::baseline(), w, img, true);
        }
        {
            MemoryImage img;
            GemmWorkload w = buildGemm(slice, img);
            est_save = scale * runWorkload(SaveConfig{}, w, img, true);
        }

        auto row = [&](const char *cfg, double full, double est) {
            std::printf("%5.0f%%   %-10s %10.1f %12.1f %6.1f%%\n",
                        100 * nbs, cfg, full / 1000, est / 1000,
                        100 * (est - full) / full);
        };
        row("baseline", full_base, est_base);
        row("SAVE", full_save, est_save);
        std::printf("%-8s %-10s full %.2fx   slice-est %.2fx\n\n", "",
                    "speedup", full_base / full_save,
                    est_base / est_save);
    }
    std::printf("The reproduction target is the speedup ratio; the "
                "slice method's absolute-time error reflects the cold "
                "weight streaming it deliberately amortizes away.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
