/**
 * @file
 * Fig. 12 reproduction: activation sparsity during end-to-end
 * training. For each conv layer we print the sparsity progression at
 * sampled epochs (the paper plots first-to-last epoch per layer).
 */

#include "bench_util.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int samples = flags.getInt("samples", 5);

    for (const NetworkModel &net :
         {vgg16Dense(), resnet50Dense(), resnet50Pruned()}) {
        ActivationProfile act = net.profile();
        std::printf("%s training: input-activation sparsity "
                    "(epochs sampled: first..last)\n",
                    net.name.c_str());
        std::printf("%-14s", "layer");
        for (int s = 0; s < samples; ++s) {
            int64_t e = net.steps() > 1
                ? s * (net.steps() - 1) / (samples - 1)
                : 0;
            std::printf(" ep%-4ld", static_cast<long>(e));
        }
        std::printf("\n");
        for (int l = 0; l < net.numKernels(); ++l) {
            std::printf("%-14s",
                        net.convLayers[static_cast<size_t>(l)]
                            .name.c_str());
            for (int s = 0; s < samples; ++s) {
                int64_t e = net.steps() > 1
                    ? s * (net.steps() - 1) / (samples - 1)
                    : 0;
                std::printf(" %5.1f%%", 100 * act.at(l, e));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("GNMT omitted as in the paper: activation sparsity is "
                "constantly 20%% (dropout).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
