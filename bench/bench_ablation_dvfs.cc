/**
 * @file
 * Ablation: the paper's dynamic VPU-count selection (SecIV-D) via
 * performance-counter heuristics. For each sparsity point we compare
 * the counter heuristic's choice against the oracle (simulate both,
 * keep the faster), and report the time lost to wrong choices plus
 * the VPU energy saved by disabling a VPU at high sparsity.
 */

#include "bench_util.h"
#include "save/frequency.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 2);

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet2_2b"),
                                     Phase::Forward, net.batch);
    Engine sv(m, SaveConfig{});
    BenchResultCache rcache(flags);
    VpuPowerModel power;

    std::printf("Counter-driven VPU selection on %s, sweeping "
                "activation sparsity (weights dense):\n\n",
                spec.name.c_str());
    std::printf("%-5s %-6s %-7s %-8s %-8s %-8s %-10s %s\n", "BS",
                "util", "choice", "t2(us)", "t1(us)", "oracle",
                "heuristic", "VPU energy vs 2-VPU");

    int correct = 0, points = 0;
    for (int a = 0; a < 10; a += step) {
        double bs = a * 0.1;
        GemmConfig g = sliceFor(spec, Precision::Fp32, bs, 0.0, flags,
                                101 + static_cast<uint64_t>(a));
        VpuChoice choice = chooseVpusByCounters(sv, g);
        auto r2 = rcache.run(sv, g, 1, 2);
        auto r1 = rcache.run(sv, g, 1, 1);
        int oracle = r1.timeNs < r2.timeNs ? 1 : 2;
        const KernelResult &chosen = choice.vpus == 1 ? r1 : r2;
        double e2 = power.energy(r2, 2);
        double ec = power.energy(chosen, choice.vpus);
        ++points;
        correct += choice.vpus == oracle;
        std::printf("%3d%%  %5.2f  %d VPU   %8.2f %8.2f  %d VPU    "
                    "%d VPU      %+5.1f%%\n",
                    a * 10, choice.vpuUtilization, choice.vpus,
                    r2.timeNs / 1000, r1.timeNs / 1000, oracle,
                    choice.vpus, 100 * (ec - e2) / e2);
    }
    std::printf("\nheuristic agreement with oracle: %d/%d points\n",
                correct, points);
    std::printf("The heuristic needs one short probe run; the oracle "
                "needs both full configurations. Disabling a VPU cuts "
                "leakage roughly in half while the op count is "
                "unchanged.\n");
    maybePrintCacheStats(flags, rcache.store());
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
