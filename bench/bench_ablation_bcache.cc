/**
 * @file
 * Ablation: Broadcast Cache sizing. The paper argues 32 entries (one
 * per architectural vector register, bounding the accumulation
 * buffers) with 4 read ports gives >90% hit rates on all kernels. We
 * sweep entries and ports on an embedded-broadcast kernel.
 */

#include "bench_util.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);

    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet3_2b"),
                                     Phase::BwdWeights, net.batch);
    GemmConfig g = sliceFor(spec, Precision::Fp32, 0.2, 0.5, flags);

    MachineConfig base_m;
    Engine base(base_m, SaveConfig::baseline());
    BenchResultCache rcache(flags);
    auto rb = rcache.run(base, g, 1, 2);

    std::printf("B$ sizing on %s (embedded broadcast, BS=20%% "
                "NBS=50%%), data design, 2 VPUs:\n\n",
                spec.name.c_str());
    std::printf("%-8s %-7s %-6s %-9s %s\n", "layout", "entries",
                "ports", "hit rate", "speedup over baseline");
    for (ALayout layout : {ALayout::PackedKMajor, ALayout::RowMajor}) {
        GemmConfig gl = g;
        gl.aLayout = layout;
        for (int entries : {4, 8, 16, 32, 64}) {
            for (int ports : {2, 4}) {
                MachineConfig m;
                m.bcacheEntries = entries;
                m.bcachePorts = ports;
                Engine e(m, SaveConfig{});
                auto r = rcache.run(e, gl, 1, 2);
                std::printf("%-8s %-7d %-6d %7.1f%%  %6.2fx\n",
                            layout == ALayout::PackedKMajor ? "packed"
                                                            : "rowmaj",
                            entries, ports,
                            100 * r.stats.get("bcache_hit_rate"),
                            speedup(rb, r));
            }
        }
    }
    std::printf("\nPaper: 32 direct-mapped entries suffice (>90%% hit "
                "rate) because the accumulation buffers bound the "
                "live broadcast lines; 4 ports cover the VFMA "
                "throughput. With the DNNL packed panel even a tiny "
                "B$ hits; an unpacked row-major panel conflicts in a "
                "direct-mapped B$ at any size — the locality the "
                "paper's design exploits is created by the kernel's "
                "data layout.\n");
    maybePrintCacheStats(flags, rcache.store());
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
