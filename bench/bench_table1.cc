/**
 * @file
 * Table I reproduction: the modeled architecture configuration.
 */

#include "bench_util.h"
#include "stats/stats.h"

using namespace save;

static int
run()
{
    MachineConfig m;
    TextTable t({"component", "configuration"});
    char buf[160];

    std::snprintf(buf, sizeof(buf),
                  "%d cores, no SMT, %d RS entries, %d ROB entries, "
                  "%d-issue, 1 VPU at %.1fGHz or %d VPUs at %.1fGHz",
                  m.cores, m.rsEntries, m.robEntries, m.issueWidth,
                  m.freq1VpuGhz, m.numVpus, m.freq2VpuGhz);
    t.addRow({"Core", buf});

    std::snprintf(buf, sizeof(buf),
                  "%d lines direct-mapped, with data or with masks",
                  m.bcacheEntries);
    t.addRow({"B$", buf});

    std::snprintf(buf, sizeof(buf), "%dKB/core private, %d-way, LRU",
                  m.l1SizeKb, m.l1Ways);
    t.addRow({"L1-D/I", buf});

    std::snprintf(buf, sizeof(buf),
                  "%dMB/core private, inclusive, %d-way, LRU",
                  m.l2SizeKb / 1024, m.l2Ways);
    t.addRow({"L2", buf});

    std::snprintf(buf, sizeof(buf),
                  "%.3fMB/core, shared, inclusive, %d-way, SRRIP, NUCA",
                  m.l3SizeKbPerCore / 1024.0, m.l3Ways);
    t.addRow({"L3", buf});

    std::snprintf(buf, sizeof(buf),
                  "2D-mesh, XY routing, %d-cycle hop", m.nocHopCycles);
    t.addRow({"NoC", buf});

    std::snprintf(buf, sizeof(buf),
                  "%.1fGB/s BW, %d channels, %.0fns latency", m.dramGBps,
                  m.dramChannels, m.dramLatNs);
    t.addRow({"Memory", buf});

    std::printf("Table I: Architecture configuration.\n\n%s\n",
                t.render().c_str());

    std::printf("VFMA latency: FP32 %d cycles, mixed-precision %d "
                "cycles (paper SecVI).\n",
                m.fp32FmaLatency, m.mpFmaLatency);
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(); });
}
