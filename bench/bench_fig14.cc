/**
 * @file
 * Fig. 14 reproduction: whole-network inference and end-to-end
 * training time, normalized to the baseline (2 VPUs @1.7GHz, no
 * SAVE), for:
 *   (a) CNN inference   (b) GNMT inference
 *   (c) CNN training    (d) GNMT training
 * across {SAVE 2 VPUs, SAVE 1 VPU @2.1GHz, static, dynamic} in FP32
 * and mixed precision, with the paper's phase breakdown (first layer
 * split out; forward / backward-input / backward-weights).
 *
 * Flags: --grid=1 reproduces the paper's full 10% sparsity sampling
 * (slower); the default --grid=3 samples every 30% and interpolates.
 * With --journal=PATH (or SAVE_JOURNAL) every completed network
 * evaluation is checkpointed, so an interrupted run resumes without
 * resimulating finished points.
 */

#include "bench_util.h"

using namespace save;

namespace {

void
printRow(const char *cfg, const PhaseBreakdown &bd, double base_total)
{
    std::printf("  %-9s %6.2fx  (1st %5.1f%%, fwd %5.1f%%, bwd-in "
                "%5.1f%%, bwd-w %5.1f%%)\n",
                cfg, base_total / bd.total(),
                100 * bd.firstLayer / bd.total(),
                100 * bd.forward / bd.total(),
                100 * bd.bwdInput / bd.total(),
                100 * bd.bwdWeights / bd.total());
}

void
printNet(const char *title, const NetResult &r, bool training)
{
    double base = r.baseline2.total();
    std::printf("%s  (baseline: %.3f ms)\n", title, base / 1e6);
    printRow("baseline", r.baseline2, base);
    printRow("2 VPUs", r.save2, base);
    printRow("1 VPU", r.save1, base);
    if (training)
        printRow("static", r.saveStatic, base);
    printRow("dynamic", r.saveDynamic, base);
}

} // namespace

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    EstimatorOptions eopt = estimatorOptions(flags);
    SweepRunner runner(flags, "fig14",
                       {eopt.gridStep, eopt.kSteps, eopt.tiles,
                        eopt.cores, static_cast<int64_t>(eopt.seed)});
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, eopt);
    // Run-dependent counters go to stderr: stdout must be bit-identical
    // across cold/warm cache states and isolation modes (CI diffs it).
    std::fprintf(stderr, "simulation fan-out: %d thread(s)\n",
                 est.threads());

    struct Entry
    {
        NetworkModel net;
        Precision prec;
        const char *label;
    };
    const Entry cnn_entries[] = {
        {vgg16Dense(), Precision::Fp32, "VGG16 FP32 dense"},
        {resnet50Dense(), Precision::Fp32, "ResNet-50 FP32 dense"},
        {resnet50Pruned(), Precision::Fp32, "ResNet-50 FP32 pruned"},
        {vgg16Dense(), Precision::Bf16, "VGG16 MP dense"},
        {resnet50Dense(), Precision::Bf16, "ResNet-50 MP dense"},
        {resnet50Pruned(), Precision::Bf16, "ResNet-50 MP pruned"},
    };
    const Entry gnmt_entries[] = {
        {gnmtPruned(), Precision::Fp32, "GNMT FP32 pruned"},
        {gnmtPruned(), Precision::Bf16, "GNMT MP pruned"},
    };

    auto eval = [&](const Entry &e, bool training) {
        std::string key = std::string(training ? "train/" : "infer/") +
                          e.label;
        return runner.point<NetResult>(key, [&] {
            return training ? est.training(e.net, e.prec)
                            : est.inference(e.net, e.prec);
        });
    };

    std::printf("=== Fig. 14a: CNN inference ===\n");
    for (const Entry &e : cnn_entries)
        printNet(e.label, eval(e, false), false);

    std::printf("\n=== Fig. 14b: GNMT inference ===\n");
    for (const Entry &e : gnmt_entries)
        printNet(e.label, eval(e, false), false);

    std::printf("\n=== Fig. 14c: CNN end-to-end training ===\n");
    for (const Entry &e : cnn_entries)
        printNet(e.label, eval(e, true), true);

    std::printf("\n=== Fig. 14d: GNMT end-to-end training ===\n");
    for (const Entry &e : gnmt_entries)
        printNet(e.label, eval(e, true), true);

    std::fprintf(stderr,
                 "slice simulations: %lu, persistent hits: %lu\n",
                 static_cast<unsigned long>(est.simulations()),
                 static_cast<unsigned long>(est.persistentHits()));
    maybePrintCacheStats(flags, est.resultStore());
    std::printf("\nPaper (dynamic, MP): inference 1.68x/1.37x/1.59x "
                "(VGG/ResNet/ResNet-pruned), 1.39x GNMT; training "
                "1.64x/1.29x/1.42x, 1.28x GNMT.\n");
    return runner.finish(est.failures().size(), est.failureReport());
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
