/**
 * @file
 * Fig. 14 reproduction: whole-network inference and end-to-end
 * training time, normalized to the baseline (2 VPUs @1.7GHz, no
 * SAVE), for:
 *   (a) CNN inference   (b) GNMT inference
 *   (c) CNN training    (d) GNMT training
 * across {SAVE 2 VPUs, SAVE 1 VPU @2.1GHz, static, dynamic} in FP32
 * and mixed precision, with the paper's phase breakdown (first layer
 * split out; forward / backward-input / backward-weights).
 *
 * The entry tables and every output format live in
 * dnn/fig14_report.h, shared with the save-serve daemon: a served
 * sweep and this bench must produce byte-identical reports.
 *
 * Flags: --grid=1 reproduces the paper's full 10% sparsity sampling
 * (slower); the default --grid=3 samples every 30% and interpolates.
 * With --journal=PATH (or SAVE_JOURNAL) every completed network
 * evaluation is checkpointed, so an interrupted run resumes without
 * resimulating finished points.
 */

#include "bench_util.h"
#include "dnn/fig14_report.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    EstimatorOptions eopt = estimatorOptions(flags);
    SweepRunner runner(flags, "fig14",
                       {eopt.gridStep, eopt.kSteps, eopt.tiles,
                        eopt.cores, static_cast<int64_t>(eopt.seed)});
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, eopt);
    // Run-dependent counters go to stderr: stdout must be bit-identical
    // across cold/warm cache states and isolation modes (CI diffs it).
    std::fprintf(stderr, "simulation fan-out: %d thread(s)\n",
                 est.threads());

    Fig14Eval eval = [&](const std::string &key, const Fig14Entry &e,
                         bool training) {
        return runner.point<NetResult>(key, [&] {
            return training ? est.training(e.net, e.prec)
                            : est.inference(e.net, e.prec);
        });
    };

    std::string report = fig14Report(eval);
    std::fputs(report.c_str(), stdout);

    std::fprintf(stderr,
                 "slice simulations: %lu, persistent hits: %lu\n",
                 static_cast<unsigned long>(est.simulations()),
                 static_cast<unsigned long>(est.persistentHits()));
    maybePrintCacheStats(flags, est.resultStore());
    return runner.finish(est.failures().size(), est.failureReport());
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
