/**
 * @file
 * Shared helpers for the per-figure/table reproduction harnesses:
 * trivial flag parsing and the standard slice configuration used
 * across figures.
 *
 * Common flags:
 *   --grid=N       sparsity-grid stride for estimator-driven figures
 *   --ksteps=N     slice K length
 *   --tiles=N      register tiles per slice
 *   --cores=N      active cores per slice simulation
 *   --threads=N    host threads for the simulation fan-out
 *                  (0 = SAVE_THREADS env or hardware concurrency)
 *   --cache-dir=D  persistent surface cache ("none" disables; default
 *                  is the SAVE_CACHE_DIR environment variable)
 */

#ifndef SAVE_BENCH_BENCH_UTIL_H
#define SAVE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "engine/engine.h"
#include "util/thread_pool.h"

namespace save {

/** Tiny --key=value flag reader. */
class Flags
{
  public:
    Flags(int argc, char **argv) : argc_(argc), argv_(argv) {}

    int
    getInt(const char *name, int def) const
    {
        std::string prefix = std::string("--") + name + "=";
        for (int i = 1; i < argc_; ++i)
            if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) ==
                0)
                return std::atoi(argv_[i] + prefix.size());
        return def;
    }

    std::string
    getStr(const char *name, const char *def) const
    {
        std::string prefix = std::string("--") + name + "=";
        for (int i = 1; i < argc_; ++i)
            if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) ==
                0)
                return argv_[i] + prefix.size();
        return def;
    }

    bool
    has(const char *name) const
    {
        std::string flag = std::string("--") + name;
        for (int i = 1; i < argc_; ++i)
            if (flag == argv_[i])
                return true;
        return false;
    }

  private:
    int argc_;
    char **argv_;
};

/** Estimator options from flags (grid=3 keeps default runs quick;
 *  --grid=1 reproduces the paper's full 10% sampling). */
inline EstimatorOptions
estimatorOptions(const Flags &flags)
{
    EstimatorOptions o;
    o.gridStep = flags.getInt("grid", 3);
    o.kSteps = flags.getInt("ksteps", o.kSteps);
    o.tiles = flags.getInt("tiles", o.tiles);
    o.cores = flags.getInt("cores", o.cores);
    o.threads = flags.getInt("threads", 0);
    o.cacheDir = flags.getStr("cache-dir", "");
    return o;
}

/**
 * Evaluate fn(0..n-1) across the global thread pool and return the
 * results in index order. Each point must be independent (every
 * simulation here is seeded), so the output is identical to a serial
 * loop — only wall-clock changes.
 */
template <typename Fn>
auto
parallelSweep(int n, Fn fn) -> std::vector<decltype(fn(0))>
{
    std::vector<decltype(fn(0))> out(static_cast<size_t>(n));
    ThreadPool::global().parallelFor(
        n, [&](int64_t i) { out[static_cast<size_t>(i)] =
                                fn(static_cast<int>(i)); });
    return out;
}

/** Slice config for a one-off kernel sweep. */
inline GemmConfig
sliceFor(const KernelSpec &spec, Precision prec, double bs, double nbs,
         const Flags &flags, uint64_t seed = 7)
{
    GemmConfig g = spec.slice(prec, bs, nbs,
                              flags.getInt("ksteps", 192), seed);
    g.tiles = flags.getInt("tiles", 6);
    return g;
}

inline const char *
fmtPct(double s)
{
    static char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100 * s);
    return buf;
}

} // namespace save

#endif // SAVE_BENCH_BENCH_UTIL_H
