/**
 * @file
 * Shared helpers for the per-figure/table reproduction harnesses:
 * trivial flag parsing and the standard slice configuration used
 * across figures.
 *
 * Common flags:
 *   --grid=N        sparsity-grid stride for estimator-driven figures
 *   --ksteps=N      slice K length
 *   --tiles=N       register tiles per slice
 *   --cores=N       active cores per slice simulation
 *   --seed=N        estimator workload seed (default 7)
 *   --threads=N     host threads for the simulation fan-out
 *                   (0 = SAVE_THREADS env or hardware concurrency)
 *   --cache-dir=D   persistent result store ("none" disables; default
 *                   is the SAVE_CACHE_DIR environment variable)
 *   --cache-max-mb=N result-store size cap; LRU eviction past it
 *                   (0 = SAVE_CACHE_MAX_MB env, unlimited by default)
 *   --cache-stats   print store counters (hits/misses/inserts/
 *                   evictions/bytes) to stderr after the run
 *   --max-retries=N retries for a failed sweep point / slice (default 2)
 *   --fail-fast     abort the sweep on the first permanent failure
 *   --max-failures=N tolerated permanent failures before a nonzero
 *                   exit (default 0: any failure fails the run, but
 *                   only after the whole sweep completes)
 *   --journal=PATH  crash-safe sweep journal ("none" disables; default
 *                   is the SAVE_JOURNAL environment variable). An
 *                   interrupted run resumes from completed points.
 *   --trace-events=F write a Perfetto/Chrome pipeline event trace of
 *                   every machine the bench runs (sets
 *                   SAVE_TRACE_EVENTS; see src/trace/event_trace.h)
 *
 * Isolation flags (sandboxed slice workers, src/proc; results are
 * bit-identical across modes):
 *   --isolation=M   none | thread (default) | process; default is the
 *                   SAVE_ISOLATION environment variable
 *   --workers=N     worker processes (0 = match --threads)
 *   --worker-timeout-ms=N  per-slice wall-clock deadline (SIGKILL on
 *                   expiry; default 30000)
 *   --max-worker-crashes=N  pool-wide crash budget before degrading
 *                   to in-process execution (default 8)
 *   --worker-max-slices=N  recycle each worker after N slices (0 =
 *                   never)
 *   --worker-rss-mb=N  RLIMIT_AS cap per worker (0 = none)
 *   --worker-bin=P  explicit save-worker binary (default: sibling of
 *                   the bench, or SAVE_WORKER_BIN)
 */

#ifndef SAVE_BENCH_BENCH_UTIL_H
#define SAVE_BENCH_BENCH_UTIL_H

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "cache/cas_key.h"
#include "cache/result_store.h"
#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "engine/engine.h"
#include "util/error.h"
#include "util/journal.h"
#include "util/logging.h"
#include "util/runtime_options.h"
#include "util/thread_pool.h"

namespace save {

/** Tiny --key=value flag reader. Malformed values throw ConfigError
 *  (caught by benchMain, which prints usage and exits cleanly). */
class Flags
{
  public:
    Flags(int argc, char **argv) : argc_(argc), argv_(argv) {}

    int
    getInt(const char *name, int def) const
    {
        std::string prefix = std::string("--") + name + "=";
        for (int i = 1; i < argc_; ++i) {
            if (std::strncmp(argv_[i], prefix.c_str(),
                             prefix.size()) != 0)
                continue;
            const char *text = argv_[i] + prefix.size();
            char *end = nullptr;
            errno = 0;
            long v = std::strtol(text, &end, 10);
            if (*text == '\0' || end == nullptr || *end != '\0' ||
                errno == ERANGE || v < std::numeric_limits<int>::min() ||
                v > std::numeric_limits<int>::max())
                throw ConfigError(std::string("--") + name +
                                  " expects an integer (got '" + text +
                                  "')");
            return static_cast<int>(v);
        }
        return def;
    }

    std::string
    getStr(const char *name, const char *def) const
    {
        std::string prefix = std::string("--") + name + "=";
        for (int i = 1; i < argc_; ++i)
            if (std::strncmp(argv_[i], prefix.c_str(), prefix.size()) ==
                0)
                return argv_[i] + prefix.size();
        return def;
    }

    bool
    has(const char *name) const
    {
        std::string flag = std::string("--") + name;
        for (int i = 1; i < argc_; ++i)
            if (flag == argv_[i])
                return true;
        return false;
    }

  private:
    int argc_;
    char **argv_;
};

/** Estimator options from flags (grid=3 keeps default runs quick;
 *  --grid=1 reproduces the paper's full 10% sampling). */
inline EstimatorOptions
estimatorOptions(const Flags &flags)
{
    EstimatorOptions o;
    o.gridStep = flags.getInt("grid", 3);
    o.kSteps = flags.getInt("ksteps", o.kSteps);
    o.tiles = flags.getInt("tiles", o.tiles);
    o.cores = flags.getInt("cores", o.cores);
    o.seed = static_cast<uint64_t>(
        flags.getInt("seed", static_cast<int>(o.seed)));
    o.threads = flags.getInt("threads", 0);
    o.cacheDir = flags.getStr("cache-dir", "");
    o.cacheMaxMb = flags.getInt("cache-max-mb", 0);
    o.maxRetries = flags.getInt("max-retries", o.maxRetries);
    o.failFast = flags.has("fail-fast");
    o.isolation = flags.getStr("isolation", "");
    o.proc.workers = flags.getInt("workers", o.proc.workers);
    o.proc.sliceTimeoutMs =
        flags.getInt("worker-timeout-ms", o.proc.sliceTimeoutMs);
    o.proc.maxWorkerCrashes =
        flags.getInt("max-worker-crashes", o.proc.maxWorkerCrashes);
    o.proc.maxSlicesPerWorker =
        flags.getInt("worker-max-slices", o.proc.maxSlicesPerWorker);
    o.proc.rssCapMb = flags.getInt("worker-rss-mb", o.proc.rssCapMb);
    o.proc.workerBin = flags.getStr("worker-bin", "");
    o.validate();
    return o;
}

/**
 * Persistent memoization of Engine::runGemm for the figure/table
 * benches that drive the simulator directly (no estimator): a repeat
 * slice — same machine, feature set, and GEMM workload — is served
 * from the content-addressed result store instead of re-simulating.
 * Shares --cache-dir/--cache-max-mb (and the SAVE_CACHE_DIR /
 * SAVE_CACHE_MAX_MB environment) with the estimator-driven benches,
 * and the same store directory: the key space is partitioned by the
 * config/workload digests, so estimator slices and bench slices
 * coexist in one store.
 */
class BenchResultCache
{
  public:
    explicit BenchResultCache(const Flags &flags)
    {
        ResultStore::Options o;
        o.dir = ResultStore::resolveDir(flags.getStr("cache-dir", ""));
        o.maxBytes =
            ResultStore::resolveMaxBytes(flags.getInt("cache-max-mb", 0));
        store_ = std::make_unique<ResultStore>(o);
    }

    /** eng.runGemm(g, cores, vpus), served from the store when it has
     *  this exact (machine, features, workload) before. Simulated
     *  results are persisted as they complete; a cached result is
     *  bit-identical to the simulation it replaces (the store
     *  round-trips every stat verbatim). */
    KernelResult
    run(const Engine &eng, const GemmConfig &g, int cores, int vpus)
    {
        const CasKey key{casHashConfig(eng.machine(), eng.save(), 0),
                         casGemmWorkload(g, cores, vpus)};
        CasValue v;
        if (store_->lookup(key, &v)) {
            KernelResult kr;
            kr.timeNs = v.timeNs;
            kr.cycles = v.cycles;
            kr.coreGhz = v.coreGhz;
            for (const auto &[name, value] : v.stats)
                kr.stats.set(name, value);
            return kr;
        }
        KernelResult kr = eng.runGemm(g, cores, vpus);
        if (std::isfinite(kr.timeNs)) {
            v = CasValue{};
            v.timeNs = kr.timeNs;
            v.cycles = kr.cycles;
            v.coreGhz = kr.coreGhz;
            for (const auto &[name, value] : kr.stats.all())
                v.stats.emplace_back(name, value);
            store_->insert(key, v);
        }
        return kr;
    }

    const ResultStore *store() const { return store_.get(); }

  private:
    std::unique_ptr<ResultStore> store_;
};

/** --cache-stats: one stderr line of store counters after the run.
 *  Accepts a null store (estimator without one) as a no-op. */
inline void
maybePrintCacheStats(const Flags &flags, const ResultStore *store)
{
    if (!flags.has("cache-stats") || store == nullptr)
        return;
    std::fprintf(stderr, "cache %s: %s\n",
                 store->enabled() ? store->dir().c_str() : "(disabled)",
                 store->statsSnapshot().toJson().c_str());
}

/**
 * Generic fallback for the poisoned-result test used by SweepRunner:
 * floating-point sweep values are poisoned when NaN; everything else
 * defaults to "not poisoned" unless a type-specific overload (e.g.
 * NetResult in dnn/estimator.h) says otherwise.
 */
template <typename T>
inline bool
sweepResultPoisoned(const T &v)
{
    if constexpr (std::is_floating_point_v<T>)
        return std::isnan(v);
    else
        return false;
}

/** Sweep robustness knobs shared by the bench harnesses. */
struct SweepOptions
{
    int maxRetries = 2;
    bool failFast = false;
    /** Permanent failures tolerated before finish() returns nonzero. */
    int maxFailures = 0;
    /** Journal file; empty disables checkpoint/resume. */
    std::string journalPath;
};

inline SweepOptions
sweepOptions(const Flags &flags)
{
    SweepOptions o;
    o.maxRetries = flags.getInt("max-retries", o.maxRetries);
    o.failFast = flags.has("fail-fast");
    o.maxFailures = flags.getInt("max-failures", o.maxFailures);
    o.journalPath = flags.getStr("journal", "");
    if (o.journalPath.empty())
        o.journalPath = RuntimeOptions::fromEnv().journalPath;
    if (o.journalPath == "none" || o.journalPath == "-")
        o.journalPath.clear();
    if (o.maxRetries < 0)
        throw ConfigError("--max-retries must be >= 0 (got " +
                          std::to_string(o.maxRetries) + ")");
    if (o.maxFailures < 0)
        throw ConfigError("--max-failures must be >= 0 (got " +
                          std::to_string(o.maxFailures) + ")");
    return o;
}

// sweepHash — the stable journal id — lives in util/journal.h now,
// shared with the shard coordinator so both compute identical ids.

/**
 * Fault-isolated, journaled sweep driver.
 *
 * point() computes one sweep point: a journal hit replays the stored
 * payload without recomputing anything; a miss runs the worker with
 * the retry policy, journals the result, and — when retries are
 * exhausted without --fail-fast — records a failure and yields a NaN
 * (floating-point T) or value-initialized result so the rest of the
 * sweep still completes. finish() prints the failure report and maps
 * it to the process exit code.
 *
 * Thread-safe: point() may be called concurrently from parallelSweep
 * workers.
 */
class SweepRunner
{
  public:
    SweepRunner(const Flags &flags, const char *bench,
                std::initializer_list<int64_t> knobs)
        : opt_(sweepOptions(flags))
    {
        if (!opt_.journalPath.empty())
            journal_ = std::make_unique<SweepJournal>(
                opt_.journalPath, sweepHash(bench, knobs));
    }

    explicit SweepRunner(SweepOptions opt) : opt_(std::move(opt))
    {
        if (!opt_.journalPath.empty())
            journal_ = std::make_unique<SweepJournal>(opt_.journalPath,
                                                      0);
    }

    template <typename T, typename Fn>
    T
    point(const std::string &key, Fn fn)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "journal payloads are raw bytes");
        if (journal_) {
            std::string hex;
            T v;
            // A journaled point resumes only if it is a real value: a
            // NaN-poisoned record (a permanently failed point journaled
            // by an older run) is treated as a miss so the resumed run
            // re-attempts it instead of replaying the failure forever.
            if (journal_->lookup(key, &hex) &&
                SweepJournal::decode(hex, v) &&
                !sweepResultPoisoned(v)) {
                resumed_.fetch_add(1, std::memory_order_relaxed);
                return v;
            }
        }
        const int attempts = 1 + opt_.maxRetries;
        for (int a = 1;; ++a) {
            try {
                T v = fn();
                // Never journal a poisoned result as a success; the
                // journal's last-wins records let a later clean value
                // supersede whatever an older run may have written.
                if (journal_ && !sweepResultPoisoned(v))
                    journal_->record(key, SweepJournal::encode(v));
                computed_.fetch_add(1, std::memory_order_relaxed);
                return v;
            } catch (const std::exception &e) {
                if (a < attempts) {
                    SAVE_WARN("sweep point '", key, "' attempt ", a,
                              "/", attempts, " failed: ", e.what(),
                              "; retrying");
                    continue;
                }
                if (opt_.failFast)
                    throw;
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    failures_.push_back(
                        {key, e.what(), attempts});
                }
                SAVE_WARN("sweep point '", key,
                          "' failed permanently after ", attempts,
                          " attempt(s): ", e.what());
                return failedValue<T>();
            }
        }
    }

    size_t resumedPoints() const
    {
        return resumed_.load(std::memory_order_relaxed);
    }
    size_t computedPoints() const
    {
        return computed_.load(std::memory_order_relaxed);
    }
    bool journaling() const { return journal_ != nullptr; }

    /**
     * Print the resume summary and failure report (stderr), then
     * return the process exit code: 0 when total failures (sweep +
     * `extra`, e.g. estimator slice failures) stay within
     * --max-failures, 1 otherwise.
     */
    int
    finish(size_t extra_failures = 0,
           const std::string &extra_report = "")
    {
        if (journal_)
            std::fprintf(stderr,
                         "journal %s: %zu point(s) resumed, %zu "
                         "computed\n",
                         journal_->path().c_str(), resumedPoints(),
                         computedPoints());
        std::lock_guard<std::mutex> lk(mu_);
        size_t total = failures_.size() + extra_failures;
        if (!failures_.empty()) {
            std::fprintf(stderr,
                         "%zu sweep point(s) failed permanently:\n",
                         failures_.size());
            for (const Failure &f : failures_)
                std::fprintf(stderr, "  %s: %s (%d attempts)\n",
                             f.key.c_str(), f.reason.c_str(),
                             f.attempts);
        }
        if (!extra_report.empty())
            std::fprintf(stderr, "%s", extra_report.c_str());
        if (total == 0)
            return 0;
        if (total <= static_cast<size_t>(opt_.maxFailures)) {
            std::fprintf(stderr,
                         "%zu failure(s) within --max-failures=%d; "
                         "exiting 0\n",
                         total, opt_.maxFailures);
            return 0;
        }
        return 1;
    }

  private:
    struct Failure
    {
        std::string key;
        std::string reason;
        int attempts;
    };

    template <typename T>
    static T
    failedValue()
    {
        if constexpr (std::is_floating_point_v<T>)
            return std::numeric_limits<T>::quiet_NaN();
        else
            return T{};
    }

    SweepOptions opt_;
    std::unique_ptr<SweepJournal> journal_;
    std::atomic<size_t> resumed_{0};
    std::atomic<size_t> computed_{0};
    std::mutex mu_;
    std::vector<Failure> failures_;
};

/** Print the shared flag reference (stderr). */
inline void
printBenchUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--flag=value ...]\n"
        "  --grid=N         sparsity-grid stride (1 = paper's full "
        "sampling)\n"
        "  --ksteps=N       slice K length\n"
        "  --tiles=N        register tiles per slice\n"
        "  --cores=N        active cores per slice simulation\n"
        "  --seed=N         estimator workload seed (default 7)\n"
        "  --threads=N      host threads (0 = SAVE_THREADS env or "
        "hardware)\n"
        "  --cache-dir=D    persistent result store ('none' "
        "disables)\n"
        "  --cache-max-mb=N result-store size cap, LRU-evicted "
        "(0 = env)\n"
        "  --cache-stats    print store counters to stderr after the "
        "run\n"
        "  --max-retries=N  retries per failed sweep point (default "
        "2)\n"
        "  --fail-fast      abort on the first permanent failure\n"
        "  --max-failures=N tolerated failures before exit 1\n"
        "  --journal=PATH   crash-safe sweep journal ('none' "
        "disables;\n"
        "                   default: SAVE_JOURNAL env)\n"
        "  --trace-events=F write a Perfetto/Chrome pipeline event "
        "trace\n"
        "                   (same as SAVE_TRACE_EVENTS=F)\n"
        "  --isolation=M    slice execution: none | thread | process\n"
        "                   (default: SAVE_ISOLATION env, then "
        "thread)\n"
        "  --workers=N      worker processes (0 = match --threads)\n"
        "  --worker-timeout-ms=N  per-slice deadline before the "
        "worker\n"
        "                   is SIGKILLed (default 30000)\n"
        "  --max-worker-crashes=N  crash budget before degrading to\n"
        "                   in-process execution (default 8)\n"
        "  --worker-max-slices=N  recycle workers after N slices "
        "(0 = never)\n"
        "  --worker-rss-mb=N  per-worker RLIMIT_AS cap (0 = none)\n"
        "  --worker-bin=P   explicit save-worker binary path\n",
        argv0);
}

/**
 * Run a bench body with the shared error policy: ConfigError prints
 * the message plus the flag reference and exits 2 (usage error);
 * any other SimError (deadlock, cache corruption under --fail-fast)
 * prints what it knows — including the pipeline snapshot for
 * deadlocks — and exits 1. Returns the body's own exit code
 * otherwise.
 */
template <typename Fn>
int
benchMain(int argc, char **argv, Fn body)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            printBenchUsage(argv[0]);
            return 0;
        }
        // --trace-events=PATH maps onto SAVE_TRACE_EVENTS so every
        // machine the bench builds auto-attaches a pipeline event
        // trace (see src/trace/event_trace.h).
        constexpr const char *kTraceEvents = "--trace-events=";
        if (std::strncmp(argv[i], kTraceEvents,
                         std::strlen(kTraceEvents)) == 0)
            setenv("SAVE_TRACE_EVENTS",
                   argv[i] + std::strlen(kTraceEvents), 1);
    }
    try {
        return body();
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "error: %s\n\n", e.what());
        printBenchUsage(argc > 0 ? argv[0] : "bench");
        return 2;
    } catch (const DeadlockError &e) {
        std::fprintf(stderr, "error: %s\n%s", e.what(),
                     e.snapshot().c_str());
        return 1;
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

/**
 * Evaluate fn(0..n-1) across the global thread pool and return the
 * results in index order. Each point must be independent (every
 * simulation here is seeded), so the output is identical to a serial
 * loop — only wall-clock changes.
 */
template <typename Fn>
auto
parallelSweep(int n, Fn fn) -> std::vector<decltype(fn(0))>
{
    std::vector<decltype(fn(0))> out(static_cast<size_t>(n));
    ThreadPool::global().parallelFor(
        n, [&](int64_t i) { out[static_cast<size_t>(i)] =
                                fn(static_cast<int>(i)); });
    return out;
}

/** Slice config for a one-off kernel sweep. */
inline GemmConfig
sliceFor(const KernelSpec &spec, Precision prec, double bs, double nbs,
         const Flags &flags, uint64_t seed = 7)
{
    GemmConfig g = spec.slice(prec, bs, nbs,
                              flags.getInt("ksteps", 192), seed);
    g.tiles = flags.getInt("tiles", 6);
    return g;
}

inline const char *
fmtPct(double s)
{
    static char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100 * s);
    return buf;
}

} // namespace save

#endif // SAVE_BENCH_BENCH_UTIL_H
