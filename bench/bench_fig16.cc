/**
 * @file
 * Fig. 16 reproduction: histogram of per-kernel speedup caps across
 * the paper's 93 studied kernels (VGG16 + ResNet-50 conv layers and
 * GNMT LSTM cells), for FP32 / mixed precision with 2 VPUs or 1 VPU.
 *
 * A kernel's cap is its speedup over the baseline at saturating
 * sparsity (90% of both kinds), the asymptote of Fig. 15.
 */

#include <map>

#include "bench_util.h"
#include "stats/stats.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    SweepRunner runner(flags, "fig16",
                       {flags.getInt("ksteps", 192),
                        flags.getInt("tiles", 6)});
    MachineConfig m;
    Engine base(m, SaveConfig::baseline());
    Engine sv(m, SaveConfig{});
    BenchResultCache rcache(flags);

    std::vector<KernelSpec> kernels = allStudiedKernels();
    std::printf("studied kernels: %zu (13 VGG16 + 53 ResNet-50 conv, "
                "27 GNMT cells)\n\n",
                kernels.size());

    // Dedup per (shape, kSteps) so the 93 kernels reuse slice sims,
    // then fan the unique cap simulations across the thread pool.
    struct Key
    {
        int mr, nr, ks;
        uint8_t pattern, prec, vpus;
        auto operator<=>(const Key &) const = default;
    };
    std::map<Key, double> cache;

    std::vector<double> edges{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 99.0};
    struct Config
    {
        Precision prec;
        int vpus;
        const char *label;
    };
    const Config configs[] = {
        {Precision::Fp32, 2, "FP32 2 VPUs"},
        {Precision::Fp32, 1, "FP32 1 VPU"},
        {Precision::Bf16, 2, "MP 2 VPUs"},
        {Precision::Bf16, 1, "MP 1 VPU"},
    };

    auto keyFor = [&](const KernelSpec &spec, Precision prec,
                      int vpus) {
        GemmConfig g = sliceFor(spec, prec, 0.9, 0.9, flags);
        return Key{g.mr, g.nrVecs, g.kSteps,
                   static_cast<uint8_t>(g.pattern),
                   static_cast<uint8_t>(prec),
                   static_cast<uint8_t>(vpus)};
    };

    std::vector<Key> unique_keys;
    std::vector<const KernelSpec *> unique_specs;
    for (const Config &cfg : configs)
        for (const KernelSpec &spec : kernels) {
            Key key = keyFor(spec, cfg.prec, cfg.vpus);
            if (!cache.count(key)) {
                cache.emplace(key, 0.0); // placeholder marks it queued
                unique_keys.push_back(key);
                unique_specs.push_back(&spec);
            }
        }

    std::vector<double> caps = parallelSweep(
        static_cast<int>(unique_keys.size()), [&](int i) {
            const Key &key = unique_keys[static_cast<size_t>(i)];
            std::string jkey =
                "mr" + std::to_string(key.mr) + "/nr" +
                std::to_string(key.nr) + "/ks" +
                std::to_string(key.ks) + "/pat" +
                std::to_string(key.pattern) + "/prec" +
                std::to_string(key.prec) + "/vpus" +
                std::to_string(key.vpus);
            return runner.point<double>(jkey, [&] {
                GemmConfig g = sliceFor(
                    *unique_specs[static_cast<size_t>(i)],
                    static_cast<Precision>(key.prec), 0.9, 0.9, flags);
                GemmConfig dense = g;
                dense.bsSparsity = dense.nbsSparsity = 0.0;
                auto rb = rcache.run(base, dense, 1, 2);
                auto rs = rcache.run(sv, g, 1, key.vpus);
                return speedup(rb, rs);
            });
        });
    for (size_t i = 0; i < unique_keys.size(); ++i)
        cache[unique_keys[i]] = caps[i];

    auto cap = [&](const KernelSpec &spec, Precision prec, int vpus) {
        return cache.at(keyFor(spec, prec, vpus));
    };

    for (const Config &cfg : configs) {
        Histogram conv_h(edges), lstm_h(edges);
        double log_sum = 0;
        for (const KernelSpec &spec : kernels) {
            double s = cap(spec, cfg.prec, cfg.vpus);
            bool is_lstm = spec.name.rfind("gnmt", 0) == 0;
            (is_lstm ? lstm_h : conv_h).sample(s);
            log_sum += std::log(s);
        }
        std::printf("%s  (geomean cap %.2fx)\n", cfg.label,
                    std::exp(log_sum / kernels.size()));
        for (int b = 0; b < conv_h.bucketCount(); ++b) {
            std::printf("  %-9s conv: %2lu  lstm: %2lu\n",
                        (b == conv_h.bucketCount() - 1
                             ? ">2.0x"
                             : (conv_h.bucketLabel(b) + "x").c_str()),
                        static_cast<unsigned long>(conv_h.count(b)),
                        static_cast<unsigned long>(lstm_h.count(b)));
        }
        std::printf("\n");
    }
    std::printf("Paper geomean caps: FP32 1.39x (2 VPUs) / 1.62x "
                "(1 VPU); MP 1.48x / 1.77x.\n");
    maybePrintCacheStats(flags, rcache.store());
    return runner.finish();
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
