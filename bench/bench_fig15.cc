/**
 * @file
 * Fig. 15 reproduction: SAVE speedup over the baseline on the
 * mixed-precision forward propagation of ResNet2_2, swept over
 * non-broadcasted (weight) and broadcasted (activation) sparsity at
 * 10% intervals, with (a) 2 VPUs @1.7GHz and (b) 1 VPU @2.1GHz.
 */

#include "bench_util.h"

using namespace save;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 1);

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet2_2b"),
                                     Phase::Forward, net.batch);

    Engine base(m, SaveConfig::baseline());
    Engine sv(m, SaveConfig{});

    GemmConfig dense = sliceFor(spec, Precision::Bf16, 0, 0, flags);
    auto rb = base.runGemm(dense, 1, 2);

    for (int vpus : {2, 1}) {
        std::printf("=== Fig. 15%s: %d VPU(s) at %.1fGHz ===\n",
                    vpus == 2 ? "a" : "b", vpus,
                    m.coreFreqGhz(vpus));
        std::printf("%8s", "NBS\\BS");
        for (int a = 0; a < 10; a += step)
            std::printf(" %5d%%", a * 10);
        std::printf("\n");
        for (int w = 0; w < 10; w += step) {
            std::printf("%7d%%", w * 10);
            for (int a = 0; a < 10; a += step) {
                GemmConfig g = sliceFor(spec, Precision::Bf16, a * 0.1,
                                        w * 0.1, flags,
                                        7 + static_cast<uint64_t>(
                                                w * 10 + a));
                auto r = sv.runGemm(g, 1, vpus);
                std::printf(" %6.2f", speedup(rb, r));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("Paper: 2 VPUs cap ~1.49x (reached near 60%% of either "
                "type); 1 VPU starts at 0.71x dense, reaches ~1.96x, "
                "and beats 2 VPUs when either sparsity exceeds "
                "~70%%.\n");
    return 0;
}
