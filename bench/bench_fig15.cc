/**
 * @file
 * Fig. 15 reproduction: SAVE speedup over the baseline on the
 * mixed-precision forward propagation of ResNet2_2, swept over
 * non-broadcasted (weight) and broadcasted (activation) sparsity at
 * 10% intervals, with (a) 2 VPUs @1.7GHz and (b) 1 VPU @2.1GHz.
 *
 * Extra flags:
 *   --trace-out=F  record the dense baseline slice into trace file F
 *   --trace-in=F   replay trace F as the baseline instead of
 *                  regenerating it (see `save-trace --help`)
 */

#include "bench_util.h"

#include "trace/replay.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 1);
    SweepRunner runner(flags, "fig15",
                       {step, flags.getInt("ksteps", 192),
                        flags.getInt("tiles", 6)});

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet2_2b"),
                                     Phase::Forward, net.batch);

    Engine base(m, SaveConfig::baseline());
    Engine sv(m, SaveConfig{});
    BenchResultCache cache(flags);

    // The upfront dense baseline doubles as the trace hook: --trace-out
    // records it, --trace-in replays a recording in its place (so a
    // captured slice can be swept against without regenerating it).
    GemmConfig dense = sliceFor(spec, Precision::Bf16, 0, 0, flags);
    std::string trace_out = flags.getStr("trace-out", "");
    std::string trace_in = flags.getStr("trace-in", "");
    KernelResult rb;
    if (!trace_in.empty()) {
        ReplayOutcome ro = replayTrace(trace_in);
        rb.cycles = ro.cycles;
        rb.timeNs = ro.timeNs;
        rb.coreGhz = ro.coreGhz;
        rb.stats = ro.stats;
    } else if (!trace_out.empty()) {
        rb = base.recordGemm(dense, trace_out, "fig15-dense-baseline",
                             1, 2);
    } else {
        rb = cache.run(base, dense, 1, 2);
    }

    // Enumerate the whole (vpus, NBS, BS) grid up front and fan the
    // independent slice simulations across the host thread pool.
    struct Point
    {
        int vpus, w, a;
    };
    std::vector<Point> points;
    for (int vpus : {2, 1})
        for (int w = 0; w < 10; w += step)
            for (int a = 0; a < 10; a += step)
                points.push_back({vpus, w, a});

    std::vector<double> speedups = parallelSweep(
        static_cast<int>(points.size()), [&](int i) {
            const Point &p = points[static_cast<size_t>(i)];
            std::string key = "vpus" + std::to_string(p.vpus) + "/w" +
                              std::to_string(p.w) + "/a" +
                              std::to_string(p.a);
            return runner.point<double>(key, [&] {
                GemmConfig g = sliceFor(
                    spec, Precision::Bf16, p.a * 0.1, p.w * 0.1, flags,
                    7 + static_cast<uint64_t>(p.w * 10 + p.a));
                return speedup(rb, cache.run(sv, g, 1, p.vpus));
            });
        });

    size_t next = 0;
    for (int vpus : {2, 1}) {
        std::printf("=== Fig. 15%s: %d VPU(s) at %.1fGHz ===\n",
                    vpus == 2 ? "a" : "b", vpus,
                    m.coreFreqGhz(vpus));
        std::printf("%8s", "NBS\\BS");
        for (int a = 0; a < 10; a += step)
            std::printf(" %5d%%", a * 10);
        std::printf("\n");
        for (int w = 0; w < 10; w += step) {
            std::printf("%7d%%", w * 10);
            for (int a = 0; a < 10; a += step)
                std::printf(" %6.2f", speedups[next++]);
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("Paper: 2 VPUs cap ~1.49x (reached near 60%% of either "
                "type); 1 VPU starts at 0.71x dense, reaches ~1.96x, "
                "and beats 2 VPUs when either sparsity exceeds "
                "~70%%.\n");
    maybePrintCacheStats(flags, cache.store());
    return runner.finish();
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
