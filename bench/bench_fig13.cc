/**
 * @file
 * Fig. 13 reproduction: the weight-pruning schedules (Zhu-Gupta
 * ramps) for ResNet-50 (epochs) and GNMT (iterations).
 */

#include "bench_util.h"

using namespace save;

static int
run()
{
    {
        PruningSchedule p = PruningSchedule::resnet50();
        std::printf("ResNet-50 training with pruning (epoch -> weight "
                    "sparsity):\n");
        for (int64_t e = 0; e < p.totalSteps; e += 4)
            std::printf("  epoch %3ld: %5.1f%%\n", static_cast<long>(e),
                        100 * p.sparsityAt(e));
        std::printf("  epoch %3ld: %5.1f%%  (final)\n",
                    static_cast<long>(p.totalSteps - 1),
                    100 * p.finalSparsity());
    }
    std::printf("\n");
    {
        PruningSchedule p = PruningSchedule::gnmt();
        std::printf("GNMT training with pruning (iteration -> weight "
                    "sparsity):\n");
        for (int64_t s = 0; s < p.totalSteps; s += 2)
            std::printf("  iter %6ldK: %5.1f%%\n",
                        static_cast<long>(s * 10),
                        100 * p.sparsityAt(s));
        std::printf("  iter %6ldK: %5.1f%%  (final)\n",
                    static_cast<long>((p.totalSteps - 1) * 10),
                    100 * p.finalSparsity());
    }
    std::printf("\nPaper: ResNet-50 ramps from epoch 32 to 80%% at "
                "epoch 60; GNMT ramps from iteration 40K to 90%% at "
                "190K.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(); });
}
