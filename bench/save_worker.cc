/**
 * @file
 * save-worker: the sandboxed slice-simulation child process.
 *
 * Not a user-facing tool — the sweep parent (src/proc/worker_pool)
 * fork/execs this binary with the wire protocol (src/proc/wire_codec,
 * DESIGN.md §12) on stdin/stdout: HELO configures the session, then
 * each REQ frame simulates one surface slice and answers RES (time,
 * cycles, frequency, full stat map) or ERR (a SimError-taxonomy kind
 * the parent rethrows). Logs go to stderr; stdout carries frames only.
 *
 * The worker is where process-level fault injection lands: it inherits
 * SAVE_FAULT_INJECT across exec and applies crash/abort/hang/oom modes
 * via maybeCrashSlice before simulating, using the attempt number the
 * parent sends in the REQ arg. A bad_alloc during a slice (injected or
 * a real RLIMIT_AS hit) is answered with ERR Oom and the worker lives
 * on; one during framing exits with kWorkerExitOom so the parent's
 * triage still classifies it.
 */

#include <cmath>
#include <exception>
#include <memory>
#include <new>

#include <sys/resource.h>
#include <unistd.h>

#include "cache/cas_key.h"
#include "cache/result_store.h"
#include "dnn/estimator.h"
#include "proc/wire_codec.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace {

using namespace save;

void
sendError(WireErrorKind kind, const std::string &what)
{
    WireErrorInfo info;
    info.kind = kind;
    info.what = what;
    wireWrite(STDOUT_FILENO, kWireError, 0, wireEncodeError(info));
}

void
applyRssCap(int cap_mb)
{
    if (cap_mb <= 0)
        return;
    struct rlimit lim;
    lim.rlim_cur = lim.rlim_max =
        static_cast<rlim_t>(cap_mb) * 1024 * 1024;
    if (::setrlimit(RLIMIT_AS, &lim) != 0)
        SAVE_WARN("save-worker: setrlimit(RLIMIT_AS, ", cap_mb,
                  " MB) failed; running uncapped");
}

int
serve()
{
    // Session setup: the first frame must be HELO.
    WireFrame frame;
    if (wireRead(STDIN_FILENO, frame, -1) != WireRead::Ok ||
        frame.fourcc != kWireHello) {
        sendError(WireErrorKind::Config,
                  "save-worker expects a HELO frame first (this binary "
                  "is launched by the sweep parent, not by hand)");
        return kWorkerExitConfig;
    }
    WireSessionInit init;
    try {
        init = wireDecodeSessionInit(frame.payload);
        init.mcfg.validate();
        init.scfg.validate();
    } catch (const SimError &e) {
        sendError(WireErrorKind::Config, e.what());
        return kWorkerExitConfig;
    }
    applyRssCap(init.rssCapMb);

    // The worker opens its own handle on the shared result store and
    // persists every slice it simulates *before* replying, so a result
    // lands on disk exactly once: the parent marks worker-run slices
    // as already persisted. A cache hit here answers the REQ without
    // simulating at all (e.g. a retry of a slice whose first attempt
    // crashed after the insert).
    std::unique_ptr<ResultStore> store;
    if (!init.cacheDir.empty()) {
        ResultStore::Options sopt;
        sopt.dir = init.cacheDir;
        sopt.maxBytes = init.cacheMaxBytes;
        store = std::make_unique<ResultStore>(sopt);
    }

    if (!wireWrite(STDOUT_FILENO, kWireHelloAck, kWireVersion, {}))
        return 1;

    // Slice loop: the parent enforces deadlines, so reads block
    // forever; a closed stdin is the normal shutdown signal.
    for (;;) {
        if (wireRead(STDIN_FILENO, frame, -1) != WireRead::Ok)
            return kWorkerExitOk; // EOF: parent is gone
        if (frame.fourcc == kWireBye)
            return kWorkerExitOk;
        if (frame.fourcc != kWireRequest) {
            sendError(WireErrorKind::Trace,
                      "save-worker: unexpected frame kind");
            continue;
        }
        WireSliceRequest req = wireDecodeSliceRequest(frame.payload);
        int attempt = static_cast<int>(frame.arg);
        try {
            FaultInjector::global().maybeCrashSlice(req.keyHash,
                                                    attempt);
            const CasKey ck{init.configHash,
                            casSliceWorkload(req.key)};
            WireSliceResult res;
            CasValue hit;
            if (store && store->lookup(ck, &hit)) {
                res.timeNs = hit.timeNs;
                res.cycles = hit.cycles;
                res.coreGhz = hit.coreGhz;
                res.stats = hit.stats;
            } else {
                KernelResult kr =
                    TrainingEstimator::simulateSliceKernel(
                        init.mcfg, init.scfg, req.key, init.tiles,
                        init.cores, init.seed);
                res.timeNs = kr.timeNs;
                res.cycles = kr.cycles;
                res.coreGhz = kr.coreGhz;
                for (const auto &[name, value] : kr.stats.all())
                    res.stats.emplace_back(name, value);
                if (store && std::isfinite(res.timeNs)) {
                    CasValue v;
                    v.timeNs = res.timeNs;
                    v.cycles = res.cycles;
                    v.coreGhz = res.coreGhz;
                    v.stats = res.stats;
                    store->insert(ck, v);
                }
            }
            if (!wireWrite(STDOUT_FILENO, kWireResult, 0,
                           wireEncodeSliceResult(res)))
                return 1; // parent hung up mid-reply
        } catch (const std::bad_alloc &) {
            sendError(WireErrorKind::Oom,
                      "slice simulation ran out of memory");
        } catch (const ConfigError &e) {
            sendError(WireErrorKind::Config, e.what());
        } catch (const TraceError &e) {
            sendError(WireErrorKind::Trace, e.what());
        } catch (const DeadlockError &e) {
            sendError(WireErrorKind::Deadlock, e.what());
        } catch (const CacheError &e) {
            sendError(WireErrorKind::Cache, e.what());
        } catch (const AuditError &e) {
            sendError(WireErrorKind::Audit, e.what());
        } catch (const std::exception &e) {
            sendError(WireErrorKind::Generic, e.what());
        }
    }
}

} // namespace

int
main()
{
    try {
        return serve();
    } catch (const std::bad_alloc &) {
        return save::kWorkerExitOom;
    } catch (const save::TraceError &e) {
        // Corrupt frame from the parent: nothing sane to reply with.
        SAVE_WARN("save-worker: ", e.what());
        return 1;
    } catch (const std::exception &e) {
        SAVE_WARN("save-worker: ", e.what());
        return 1;
    }
}
