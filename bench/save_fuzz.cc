/**
 * @file
 * Differential uop-stream fuzzer CLI (src/sim/fuzz.h).
 *
 * Generates seeded random programs and runs each through every
 * scheduler policy × precision mix × fast-forward mode against the
 * in-order ArchExecutor oracle, with leak and fast-forward-equivalence
 * checks. Build with -DSAVE_AUDIT=ON (default in Debug) to also run
 * the cycle-granular pipeline invariant auditor underneath every case.
 *
 * usage: save-fuzz [--seed N] [--count N] [--time-budget SECS]
 *                  [--out DIR] [--no-shrink]
 *        save-fuzz --run FILE      (re-check one corpus entry)
 *        save-fuzz --seed N --emit FILE   (dump a generated program)
 *
 *   --seed N         first seed (default 0); seeds run N..N+count-1
 *   --count N        programs to generate and check (default 500)
 *   --time-budget S  stop early after S seconds (0 = none; for CI)
 *   --out DIR        where failure artifacts go (default ".")
 *   --no-shrink      keep the original failing program as the repro
 *
 * Both `--flag=value` and `--flag value` spellings are accepted.
 * On the first failure the program is delta-debug shrunk, written as
 * a text corpus entry (fuzz-<seed>.txt, replayable by
 * tests/test_fuzz_corpus) and as a .savtrc trace (fuzz-<seed>.savtrc,
 * inspectable with save-trace), and the process exits 1.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/fuzz.h"
#include "util/error.h"

namespace {

/** --flag=value or --flag value (the acceptance harness uses the
 *  space-separated form, bench_util::Flags only the '=' one). */
const char *
argValue(int argc, char **argv, const char *name)
{
    std::string eq = std::string("--") + name + "=";
    std::string bare = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0)
            return argv[i] + eq.size();
        if (bare == argv[i] && i + 1 < argc)
            return argv[i + 1];
    }
    return nullptr;
}

int64_t
argInt(int argc, char **argv, const char *name, int64_t def)
{
    const char *v = argValue(argc, argv, name);
    return v ? std::strtoll(v, nullptr, 10) : def;
}

bool
argFlag(int argc, char **argv, const char *name)
{
    std::string bare = std::string("--") + name;
    for (int i = 1; i < argc; ++i)
        if (bare == argv[i])
            return true;
    return false;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--count N] "
                 "[--time-budget SECS] [--out DIR] [--no-shrink]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argFlag(argc, argv, "help") || argFlag(argc, argv, "h")) {
        usage(argv[0]);
        return 0;
    }
    // --run FILE: re-check one serialized corpus entry (repro loop).
    if (const char *path = argValue(argc, argv, "run")) {
        std::ifstream f(path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", path);
            return 2;
        }
        std::ostringstream text;
        std::string line;
        while (std::getline(f, line))
            if (line.empty() || line[0] != '#')
                text << line << "\n";
        save::FuzzProgram p = save::fuzzParse(text.str());
        std::string failure = save::fuzzCheck(p);
        if (failure.empty()) {
            std::fprintf(stderr, "%s: clean\n", path);
            return 0;
        }
        std::fprintf(stderr, "%s: FAILED: %s\n", path,
                     failure.c_str());
        return 1;
    }

    // --emit FILE: write the generated program for --seed and exit
    // (corpus curation; no checking or shrinking).
    if (const char *path = argValue(argc, argv, "emit")) {
        uint64_t seed =
            static_cast<uint64_t>(argInt(argc, argv, "seed", 0));
        save::FuzzProgram p = save::fuzzGenerate(seed);
        std::ofstream f(path);
        f << "# save-fuzz --emit, seed " << seed << " ("
          << p.uops.size() << " uops, fault " << p.faultIndex
          << ")\n";
        f << save::fuzzSerialize(p);
        std::fprintf(stderr, "emitted seed %llu to %s\n",
                     static_cast<unsigned long long>(seed), path);
        return 0;
    }

    const uint64_t seed0 =
        static_cast<uint64_t>(argInt(argc, argv, "seed", 0));
    const int64_t count = argInt(argc, argv, "count", 500);
    const int64_t budgetSecs =
        argInt(argc, argv, "time-budget", 0);
    const char *outArg = argValue(argc, argv, "out");
    const std::string outDir = outArg ? outArg : ".";
    const bool shrink = !argFlag(argc, argv, "no-shrink");

    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    int64_t checked = 0;
    for (int64_t i = 0; i < count; ++i) {
        if (budgetSecs > 0 && elapsed() >= budgetSecs) {
            std::fprintf(stderr,
                         "time budget (%llds) reached after %lld "
                         "programs; stopping early\n",
                         static_cast<long long>(budgetSecs),
                         static_cast<long long>(checked));
            break;
        }
        uint64_t seed = seed0 + static_cast<uint64_t>(i);
        save::FuzzProgram p = save::fuzzGenerate(seed);
        std::string failure;
        try {
            failure = save::fuzzCheck(p);
        } catch (const std::exception &e) {
            // fuzzCheck turns simulation errors into failure strings;
            // anything escaping is a checker bug, still worth a repro.
            failure = std::string("checker: ") + e.what();
        }
        ++checked;
        if (failure.empty()) {
            if (checked % 50 == 0)
                std::fprintf(stderr, "  %lld/%lld clean (%llds)\n",
                             static_cast<long long>(checked),
                             static_cast<long long>(count),
                             static_cast<long long>(elapsed()));
            continue;
        }

        std::fprintf(stderr, "seed %llu FAILED: %s\n",
                     static_cast<unsigned long long>(seed),
                     failure.c_str());
        save::FuzzProgram repro = p;
        if (shrink) {
            std::fprintf(stderr, "shrinking (%zu uops)...\n",
                         p.uops.size());
            repro = save::fuzzShrink(p);
            std::fprintf(stderr, "shrunk to %zu uops: %s\n",
                         repro.uops.size(),
                         save::fuzzCheck(repro).c_str());
        }
        std::string stem =
            outDir + "/fuzz-" + std::to_string(seed);
        {
            std::ofstream f(stem + ".txt");
            f << "# save-fuzz seed " << seed << ": " << failure
              << "\n";
            f << save::fuzzSerialize(repro);
        }
        try {
            save::fuzzWriteTrace(repro, stem + ".savtrc",
                                 "fuzz-seed-" + std::to_string(seed));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "trace emission failed: %s\n",
                         e.what());
        }
        std::fprintf(stderr, "repro written: %s.txt, %s.savtrc\n",
                     stem.c_str(), stem.c_str());
        return 1;
    }

    std::fprintf(stderr,
                 "%lld program(s) clean across all policies x "
                 "precisions x ff modes (%llds)\n",
                 static_cast<long long>(checked),
                 static_cast<long long>(elapsed()));
    return 0;
}
