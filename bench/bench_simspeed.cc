/**
 * @file
 * Simulator speed benchmark — a plain, dependency-free binary so the
 * CI perf-smoke job can run it anywhere and diff its JSON against a
 * committed baseline.
 *
 * Measures host throughput (simulated uops/s and cycles/s) of pinned
 * GEMM slices per scheduler policy, precision, and sparsity, with the
 * stall fast-forward on and off, plus the steady-state heap-allocation
 * rate of the cycle loop (the event-driven loop is allocation-free in
 * steady state; a regression here shows up as allocs/cycle creeping
 * up). Workload sizes are hard-pinned; the only environment this file
 * reads is the SAVE_FASTFORWARD toggle it sets itself and the
 * SAVE_CACHE_DIR/SAVE_CACHE_MAX_MB result-store knobs.
 *
 * With a result store configured (--cache-dir or SAVE_CACHE_DIR) a
 * repeat slice is served from the store instead of simulating, so the
 * throughput numbers measure store speed, not simulator speed — any
 * perf-regression run must pass --cache-dir=none (CI does). The
 * --json document always carries the store counters in its "cache"
 * object (all zero when disabled).
 *
 * Usage:
 *   bench_simspeed                 human-readable table
 *   bench_simspeed --json          JSON document on stdout
 *   bench_simspeed --cache-dir=D   result store ('none' disables;
 *                                  default: SAVE_CACHE_DIR env)
 *   bench_simspeed --check F       also compare uops/s against the
 *                                  baseline JSON at F; exit 1 if any
 *                                  benchmark regressed by more than 20%
 *                                  (tolerance for shared-runner noise).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <cmath>
#include <memory>

#include "cache/cas_key.h"
#include "cache/result_store.h"
#include "kernels/gemm.h"
#include "mem/memory_image.h"
#include "sim/multicore.h"
#include "stats/stats.h"
#include "util/simd.h"

/* Heap-allocation counter: interpose the global allocation functions
 * (this binary only). Counting news is enough — the metric is churn,
 * and every free pairs with an allocation we counted. */
static std::atomic<uint64_t> g_heap_allocs{0};

void *
operator new(std::size_t n)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

namespace save {
namespace {

/** The pinned slice: big enough to reach steady state, small enough
 *  for a CI smoke job. Do not derive any of these from the machine or
 *  the environment — the committed baseline assumes these numbers. */
GemmConfig
slice(double bs, double nbs, Precision prec)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 192;
    g.tiles = 6;
    g.pattern = BroadcastPattern::Embedded;
    g.precision = prec;
    g.bsSparsity = bs;
    g.nbsSparsity = nbs;
    g.seed = 7;
    return g;
}

struct RunResult
{
    uint64_t cycles = 0;
    double uops = 0;
    uint64_t ffJumps = 0;
    uint64_t ffSkipped = 0;
};

/** Shared result store; a disabled instance when --cache-dir=none. */
std::unique_ptr<ResultStore> g_store;

/** One single-core run, built directly on Multicore (not Engine) so
 *  the fast-forward counters — deliberately kept out of the stat map —
 *  are reachable. */
RunResult
runOnce(const SaveConfig &scfg, const GemmConfig &g)
{
    MachineConfig mc;
    mc.dramGBps = mc.dramGBps / mc.cores; // one core's bandwidth share
    mc.cores = 1;

    // Content address: the fast-forward toggle changes the ff counters
    // (not the simulated result), so it salts the config digest to
    // keep the _noff row's cached counters separate.
    const char *ff = std::getenv("SAVE_FASTFORWARD");
    const CasKey key{casHashConfig(mc, scfg,
                                   ff && ff[0] == '1' ? 1 : 0),
                     casGemmWorkload(g, 1, 2)};
    CasValue v;
    if (g_store && g_store->lookup(key, &v)) {
        RunResult r;
        r.cycles = v.cycles;
        for (const auto &[name, value] : v.stats) {
            if (name == "uops")
                r.uops = value;
            else if (name == "ff_jumps")
                r.ffJumps = static_cast<uint64_t>(value);
            else if (name == "ff_cycles_skipped")
                r.ffSkipped = static_cast<uint64_t>(value);
        }
        return r;
    }

    MemoryImage image;
    std::vector<GemmWorkload> work = buildShardedGemm(g, image, 1);
    Multicore machine(mc, scfg, 2, &image);
    work[0].warmup(machine.hierarchy());
    VectorTrace trace(work[0].trace);
    machine.bindTraces({&trace});

    RunResult r;
    r.cycles = machine.run();
    r.uops = machine.aggregateStats().get("uops");
    r.ffJumps = machine.core(0).ffJumps();
    r.ffSkipped = machine.core(0).ffCyclesSkipped();
    if (g_store) {
        v = CasValue{};
        v.timeNs = static_cast<double>(r.cycles); // no wall time here
        v.cycles = r.cycles;
        v.stats.emplace_back("uops", r.uops);
        v.stats.emplace_back("ff_jumps",
                             static_cast<double>(r.ffJumps));
        v.stats.emplace_back("ff_cycles_skipped",
                             static_cast<double>(r.ffSkipped));
        g_store->insert(key, v);
    }
    return r;
}

struct BenchRow
{
    std::string name;
    double uopsPerSec = 0;
    double cyclesPerSec = 0;
    uint64_t simCycles = 0;
    uint64_t ffJumps = 0;
    uint64_t ffSkipped = 0;
    double allocsPerCycle = 0;
};

BenchRow
bench(const char *name, const SaveConfig &scfg, const GemmConfig &g,
      bool fastforward)
{
    setenv("SAVE_FASTFORWARD", fastforward ? "1" : "0", 1);

    runOnce(scfg, g); // warm-up (page cache, allocator arenas)

    constexpr int kReps = 5;
    uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
    auto t0 = std::chrono::steady_clock::now();
    double uops = 0;
    uint64_t cycles = 0;
    RunResult last;
    for (int i = 0; i < kReps; ++i) {
        last = runOnce(scfg, g);
        uops += last.uops;
        cycles += last.cycles;
    }
    auto t1 = std::chrono::steady_clock::now();
    uint64_t allocs1 = g_heap_allocs.load(std::memory_order_relaxed);
    double secs = std::chrono::duration<double>(t1 - t0).count();

    BenchRow row;
    row.name = name;
    row.uopsPerSec = uops / secs;
    row.cyclesPerSec = static_cast<double>(cycles) / secs;
    row.simCycles = last.cycles;
    row.ffJumps = last.ffJumps;
    row.ffSkipped = last.ffSkipped;
    // Whole-run allocation rate: includes machine construction, so it
    // is an upper bound on steady-state churn.
    row.allocsPerCycle =
        static_cast<double>(allocs1 - allocs0) / static_cast<double>(cycles);

    unsetenv("SAVE_FASTFORWARD");
    return row;
}

std::vector<BenchRow>
runAll()
{
    std::vector<BenchRow> rows;
    rows.push_back(bench("baseline_fp32_dense", SaveConfig::baseline(),
                         slice(0.0, 0.0, Precision::Fp32), true));
    rows.push_back(bench("rvc_fp32_dense", SaveConfig{},
                         slice(0.0, 0.0, Precision::Fp32), true));
    rows.push_back(bench("rvc_fp32_sparse80", SaveConfig{},
                         slice(0.8, 0.8, Precision::Fp32), true));
    rows.push_back(bench("rvc_bf16_sparse80", SaveConfig{},
                         slice(0.8, 0.8, Precision::Bf16), true));
    rows.push_back(bench("rvc_fp32_sparse80_noff", SaveConfig{},
                         slice(0.8, 0.8, Precision::Fp32), false));

    // The four main slices again, pinned to the generic scalar SIMD
    // backend. The baseline tracks both sets, so a regression in a
    // vector backend and one in the surrounding simulator show up
    // separately; on hosts without AVX the two sets coincide.
    simd::Backend active = simd::activeBackend();
    if (active != simd::Backend::Generic &&
        simd::forceBackend(simd::Backend::Generic)) {
        rows.push_back(
            bench("baseline_fp32_dense_simd_generic",
                  SaveConfig::baseline(),
                  slice(0.0, 0.0, Precision::Fp32), true));
        rows.push_back(bench("rvc_fp32_dense_simd_generic", SaveConfig{},
                             slice(0.0, 0.0, Precision::Fp32), true));
        rows.push_back(bench("rvc_fp32_sparse80_simd_generic",
                             SaveConfig{},
                             slice(0.8, 0.8, Precision::Fp32), true));
        rows.push_back(bench("rvc_bf16_sparse80_simd_generic",
                             SaveConfig{},
                             slice(0.8, 0.8, Precision::Bf16), true));
        simd::forceBackend(active);
    }
    return rows;
}

void
printTable(const std::vector<BenchRow> &rows)
{
    std::printf("simd backend: %s (host: %s)\n", simd::backendName(),
                simd::hostFeatures().c_str());
    if (g_store && g_store->enabled())
        std::fprintf(stderr, "cache %s: %s\n", g_store->dir().c_str(),
                     g_store->statsSnapshot().toJson().c_str());
    std::printf("%-36s %14s %14s %10s %10s %12s %14s\n", "benchmark",
                "uops/s", "sim_cycles/s", "cycles", "ff_jumps",
                "ff_skipped", "allocs/cycle");
    for (const BenchRow &r : rows) {
        std::printf("%-36s %14.0f %14.0f %10llu %10llu %12llu %14.4f\n",
                    r.name.c_str(), r.uopsPerSec, r.cyclesPerSec,
                    static_cast<unsigned long long>(r.simCycles),
                    static_cast<unsigned long long>(r.ffJumps),
                    static_cast<unsigned long long>(r.ffSkipped),
                    r.allocsPerCycle);
    }
}

void
printJson(const std::vector<BenchRow> &rows)
{
    std::printf("{\n  \"schema\": \"save-bench-simspeed-v1\",\n"
                "  \"simd_backend\": \"%s\",\n"
                "  \"host_simd_features\": \"%s\",\n",
                simd::backendName(), simd::hostFeatures().c_str());
    std::printf("  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"evictions\": %llu, \"bytes\": %llu},\n",
                static_cast<unsigned long long>(
                    g_store ? g_store->hits() : 0),
                static_cast<unsigned long long>(
                    g_store ? g_store->misses() : 0),
                static_cast<unsigned long long>(
                    g_store ? g_store->evictions() : 0),
                static_cast<unsigned long long>(
                    g_store ? g_store->bytes() : 0));
    std::printf("  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const BenchRow &r = rows[i];
        // One StatGroup per row rendered by the shared stable-ordered
        // JSON writer; "name" is spliced in front (alphabetical order
        // keeps every metric after it, which readBaseline relies on).
        save::StatGroup g;
        g.set("uops_per_sec", r.uopsPerSec);
        g.set("sim_cycles_per_sec", r.cyclesPerSec);
        g.set("sim_cycles", static_cast<double>(r.simCycles));
        g.set("ff_jumps", static_cast<double>(r.ffJumps));
        g.set("ff_cycles_skipped", static_cast<double>(r.ffSkipped));
        g.set("allocs_per_cycle", r.allocsPerCycle);
        std::string json = g.toJson();
        std::printf("    {\"name\": \"%s\", %s%s\n", r.name.c_str(),
                    json.c_str() + 1, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

/** Minimal extraction of {"name": ..., "uops_per_sec": ...} pairs from
 *  a baseline JSON produced by --json (no general JSON parsing). */
std::vector<std::pair<std::string, double>>
readBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    std::vector<std::pair<std::string, double>> out;
    size_t pos = 0;
    const std::string kName = "\"name\": \"";
    const std::string kRate = "\"uops_per_sec\": ";
    while ((pos = text.find(kName, pos)) != std::string::npos) {
        size_t nb = pos + kName.size();
        size_t ne = text.find('"', nb);
        size_t rb = text.find(kRate, ne);
        if (ne == std::string::npos || rb == std::string::npos)
            break;
        out.emplace_back(text.substr(nb, ne - nb),
                         std::strtod(text.c_str() + rb + kRate.size(),
                                     nullptr));
        pos = rb;
    }
    return out;
}

int
check(const std::vector<BenchRow> &rows, const std::string &baseline_path)
{
    constexpr double kTolerance = 0.20;
    auto baseline = readBaseline(baseline_path);
    if (baseline.empty()) {
        std::fprintf(stderr, "baseline %s has no benchmarks\n",
                     baseline_path.c_str());
        return 2;
    }
    int failures = 0;
    for (const auto &[name, base_rate] : baseline) {
        const BenchRow *cur = nullptr;
        for (const BenchRow &r : rows)
            if (r.name == name)
                cur = &r;
        if (!cur) {
            std::fprintf(stderr, "FAIL %s: present in baseline, not run\n",
                         name.c_str());
            ++failures;
            continue;
        }
        double ratio = cur->uopsPerSec / base_rate;
        bool ok = ratio >= 1.0 - kTolerance;
        std::printf("%-5s %-36s %.0f uops/s vs baseline %.0f (%+.1f%%)\n",
                    ok ? "ok" : "FAIL", name.c_str(), cur->uopsPerSec,
                    base_rate, (ratio - 1.0) * 100.0);
        if (!ok)
            ++failures;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace save

int
main(int argc, char **argv)
{
    bool json = false;
    std::string check_path;
    std::string cache_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
            cache_dir = argv[i] + 12;
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--cache-dir=D] "
                         "[--check baseline.json]\n",
                         argv[0]);
            return 2;
        }
    }

    {
        save::ResultStore::Options o;
        o.dir = save::ResultStore::resolveDir(cache_dir);
        o.maxBytes = save::ResultStore::resolveMaxBytes(0);
        save::g_store = std::make_unique<save::ResultStore>(o);
    }

    std::vector<save::BenchRow> rows = save::runAll();
    if (json)
        save::printJson(rows);
    else
        save::printTable(rows);
    if (!check_path.empty())
        return save::check(rows, check_path);
    return 0;
}
