/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): host cost of one
 * simulated slice per scheduler policy and precision. Useful for
 * sizing the estimator's sampling budget and catching performance
 * regressions in the scheduler loops.
 */

#include <benchmark/benchmark.h>

#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "engine/engine.h"

namespace save {
namespace {

GemmConfig
sliceConfig(Precision prec)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 96;
    g.tiles = 2;
    g.pattern = BroadcastPattern::Embedded;
    g.precision = prec;
    g.bsSparsity = 0.3;
    g.nbsSparsity = 0.5;
    return g;
}

void
BM_BaselineSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig::baseline());
    GemmConfig g = sliceConfig(Precision::Fp32);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles += e.runGemm(g, 1, 2).cycles;
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaselineSlice)->Unit(benchmark::kMillisecond);

void
BM_SaveRvcSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig{});
    GemmConfig g = sliceConfig(Precision::Fp32);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles += e.runGemm(g, 1, 2).cycles;
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SaveRvcSlice)->Unit(benchmark::kMillisecond);

void
BM_SaveHcSlice(benchmark::State &state)
{
    MachineConfig m;
    SaveConfig s;
    s.policy = SchedPolicy::HC;
    Engine e(m, s);
    GemmConfig g = sliceConfig(Precision::Fp32);
    for (auto _ : state)
        benchmark::DoNotOptimize(e.runGemm(g, 1, 2).cycles);
}
BENCHMARK(BM_SaveHcSlice)->Unit(benchmark::kMillisecond);

void
BM_SaveMixedPrecisionSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig{});
    GemmConfig g = sliceConfig(Precision::Bf16);
    for (auto _ : state)
        benchmark::DoNotOptimize(e.runGemm(g, 1, 2).cycles);
}
BENCHMARK(BM_SaveMixedPrecisionSlice)->Unit(benchmark::kMillisecond);

void
BM_MulticoreSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig{});
    GemmConfig g = sliceConfig(Precision::Fp32);
    int cores = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(e.runGemm(g, cores, 2).cycles);
}
BENCHMARK(BM_MulticoreSlice)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Whole-network estimation with the slice fan-out on N host threads,
 * cold in-memory cache each iteration (fresh estimator, persistence
 * disabled). Arg(1) is the strictly serial path; the
 * `norm_rate` counter is estimations/second divided by the thread
 * count — constant across rows means perfect scaling, and
 * norm_rate(N) / norm_rate(1) is the parallel efficiency at N.
 */
void
BM_EstimatorFanout(benchmark::State &state)
{
    int threads = static_cast<int>(state.range(0));
    NetworkModel net = vgg16Dense();
    for (auto _ : state) {
        EstimatorOptions o;
        o.kSteps = 48;
        o.tiles = 2;
        o.gridStep = 3;
        o.threads = threads;
        o.cacheDir = "none";
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        NetResult r = est.inference(net, Precision::Bf16);
        benchmark::DoNotOptimize(r);
    }
    state.counters["threads"] = threads;
    state.counters["norm_rate"] = benchmark::Counter(
        1.0 / threads, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_EstimatorFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
} // namespace save

BENCHMARK_MAIN();
