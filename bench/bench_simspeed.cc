/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): host cost of one
 * simulated slice per scheduler policy and precision. Useful for
 * sizing the estimator's sampling budget and catching performance
 * regressions in the scheduler loops.
 */

#include <benchmark/benchmark.h>

#include "engine/engine.h"

namespace save {
namespace {

GemmConfig
sliceConfig(Precision prec)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 96;
    g.tiles = 2;
    g.pattern = BroadcastPattern::Embedded;
    g.precision = prec;
    g.bsSparsity = 0.3;
    g.nbsSparsity = 0.5;
    return g;
}

void
BM_BaselineSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig::baseline());
    GemmConfig g = sliceConfig(Precision::Fp32);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles += e.runGemm(g, 1, 2).cycles;
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaselineSlice)->Unit(benchmark::kMillisecond);

void
BM_SaveRvcSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig{});
    GemmConfig g = sliceConfig(Precision::Fp32);
    uint64_t cycles = 0;
    for (auto _ : state)
        cycles += e.runGemm(g, 1, 2).cycles;
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SaveRvcSlice)->Unit(benchmark::kMillisecond);

void
BM_SaveHcSlice(benchmark::State &state)
{
    MachineConfig m;
    SaveConfig s;
    s.policy = SchedPolicy::HC;
    Engine e(m, s);
    GemmConfig g = sliceConfig(Precision::Fp32);
    for (auto _ : state)
        benchmark::DoNotOptimize(e.runGemm(g, 1, 2).cycles);
}
BENCHMARK(BM_SaveHcSlice)->Unit(benchmark::kMillisecond);

void
BM_SaveMixedPrecisionSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig{});
    GemmConfig g = sliceConfig(Precision::Bf16);
    for (auto _ : state)
        benchmark::DoNotOptimize(e.runGemm(g, 1, 2).cycles);
}
BENCHMARK(BM_SaveMixedPrecisionSlice)->Unit(benchmark::kMillisecond);

void
BM_MulticoreSlice(benchmark::State &state)
{
    MachineConfig m;
    Engine e(m, SaveConfig{});
    GemmConfig g = sliceConfig(Precision::Fp32);
    int cores = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(e.runGemm(g, cores, 2).cycles);
}
BENCHMARK(BM_MulticoreSlice)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace save

BENCHMARK_MAIN();
