/**
 * @file
 * Fig. 19 reproduction: SAVE's mixed-precision multiplicand-lane
 * compression (SecV) on the MP back-propagation of input of
 * ResNet4_1a, with 1 VPU, swept over non-broadcasted sparsity.
 * Speedups are over the 2-VPU baseline.
 */

#include "bench_util.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 1);
    SweepRunner runner(flags, "fig19",
                       {step, flags.getInt("ksteps", 192),
                        flags.getInt("tiles", 6)});

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    KernelSpec spec = makeConvKernel(findConvLayer(net, "resnet4_1a"),
                                     Phase::BwdInput, net.batch);
    std::printf("kernel %s: %dx%d mixed precision\n\n",
                spec.name.c_str(), spec.shape.mr,
                spec.shape.nrVecs * 16);

    Engine base(m, SaveConfig::baseline());
    BenchResultCache rcache(flags);
    GemmConfig dense = sliceFor(spec, Precision::Bf16, 0, 0, flags);
    auto rb = rcache.run(base, dense, 1, 2);

    SaveConfig with_mp;
    SaveConfig without_mp;
    without_mp.mpCompress = false;
    Engine ew(m, with_mp), eo(m, without_mp);

    // Both rows' sweeps are independent seeded simulations: run the
    // whole (technique, NBS) grid through the thread pool.
    std::vector<int> nbs_bins;
    for (int w = 0; w < 10; w += step)
        nbs_bins.push_back(w);
    int n = static_cast<int>(nbs_bins.size());

    std::vector<double> speedups =
        parallelSweep(2 * n, [&](int i) {
            const Engine &e = i < n ? eo : ew;
            int w = nbs_bins[static_cast<size_t>(i % n)];
            std::string key = std::string(i < n ? "nomp" : "mp") +
                              "/w" + std::to_string(w);
            return runner.point<double>(key, [&] {
                GemmConfig g = sliceFor(spec, Precision::Bf16, 0.0,
                                        w * 0.1, flags,
                                        71 + static_cast<uint64_t>(w));
                return speedup(rb, rcache.run(e, g, 1, 1));
            });
        });

    std::printf("%-18s", "NBS");
    for (int w : nbs_bins)
        std::printf(" %5d%%", w * 10);
    std::printf("\n%-18s", "w/o MP technique");
    for (int i = 0; i < n; ++i)
        std::printf(" %6.2f", speedups[static_cast<size_t>(i)]);
    std::printf("\n%-18s", "w/ MP technique");
    for (int i = 0; i < n; ++i)
        std::printf(" %6.2f", speedups[static_cast<size_t>(n + i)]);
    std::printf("\n\nPaper: the MP technique improves speedup at every "
                "sparsity level, sometimes substantially (exploitable "
                "sparsity without it is only the square of the ML "
                "sparsity).\n");
    maybePrintCacheStats(flags, rcache.store());
    return runner.finish();
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
