/**
 * @file
 * Cross-validation of the kernel abstraction: the figure benches
 * model conv layers as im2col GEMM slices; here the same layer runs
 * as a true direct convolution (padded halos, strided broadcast
 * streams, kh x kw x ic loop nest) and the SAVE speedups are compared
 * across activation sparsity.
 */

#include <memory>

#include "bench_util.h"
#include "kernels/directconv.h"
#include "sim/multicore.h"

using namespace save;

namespace {

double
runConv(const SaveConfig &scfg, const DirectConvWorkload &w,
        MemoryImage &image)
{
    MachineConfig m;
    m.cores = 1;
    m.dramGBps /= 28.0;
    Multicore mc(m, scfg, 2, &image);
    w.warmup(mc.hierarchy());
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    return static_cast<double>(mc.run(100'000'000)) /
           m.coreFreqGhz(2);
}

} // namespace

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 2);

    NetworkModel net = resnet50Pruned();
    ConvLayer layer = findConvLayer(net, "resnet3_2b");
    layer.ih = layer.iw = 14; // a slice of the 28x28 plane
    KernelSpec spec =
        makeConvKernel(layer, Phase::Forward, net.batch);

    std::printf("Direct convolution vs im2col-GEMM abstraction, "
                "%s (3x3, %d->%d channels), forward, 2 VPUs.\n"
                "SAVE speedup over the dense baseline, sweeping "
                "activation sparsity (weights dense):\n\n",
                layer.name.c_str(), layer.inC, layer.outC);

    std::printf("%-18s", "BS");
    for (int a = 0; a < 10; a += step)
        std::printf(" %5d%%", a * 10);
    std::printf("\n");

    // Direct-convolution path.
    double direct_dense = 0;
    std::printf("%-18s", "direct conv");
    for (int a = 0; a < 10; a += step) {
        DirectConvConfig c;
        c.layer = layer;
        c.ohRows = 2;
        c.actSparsity = a * 0.1;
        c.seed = 500 + static_cast<uint64_t>(a);
        MemoryImage i1, i2;
        DirectConvWorkload w1 = buildDirectConv(c, i1);
        DirectConvWorkload w2 = buildDirectConv(c, i2);
        if (a == 0)
            direct_dense = runConv(SaveConfig::baseline(), w1, i1);
        double t = runConv(SaveConfig{}, w2, i2);
        std::printf(" %5.2f", direct_dense / t);
    }
    std::printf("\n");

    // im2col GEMM abstraction of the same layer.
    MachineConfig m;
    Engine base(m, SaveConfig::baseline());
    Engine sv(m, SaveConfig{});
    BenchResultCache rcache(flags);
    GemmConfig dense_g = sliceFor(spec, Precision::Fp32, 0, 0, flags);
    auto rb = rcache.run(base, dense_g, 1, 2);
    std::printf("%-18s", "im2col GEMM");
    for (int a = 0; a < 10; a += step) {
        GemmConfig g = sliceFor(spec, Precision::Fp32, a * 0.1, 0.0,
                                flags, 520 + static_cast<uint64_t>(a));
        std::printf(" %5.2f", speedup(rb, rcache.run(sv, g, 1, 2)));
    }
    std::printf("\n\nBoth kernel forms expose the same broadcast "
                "sparsity to SAVE; the direct form adds padding-halo "
                "zeros and strided broadcast streams, which the B$ "
                "and the MGU handle identically.\n");
    maybePrintCacheStats(flags, rcache.store());
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
