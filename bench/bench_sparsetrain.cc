/**
 * @file
 * Comparison with the software state of the art (paper SecVIII):
 * SparseTrain-style software skipping exploits only broadcasted
 * sparsity; SAVE exploits both kinds in hardware and composes with
 * the software scheme. Speedups over the dense baseline on an
 * explicit-broadcast forward kernel, 2 VPUs.
 */

#include <memory>

#include "bench_util.h"
#include "kernels/sparsetrain.h"
#include "sim/multicore.h"

using namespace save;

namespace {

double
runTrace(const SaveConfig &scfg, const GemmWorkload &w,
         MemoryImage &image)
{
    MachineConfig m;
    m.cores = 1;
    m.dramGBps /= 28.0; // one core's share of the 28-core machine
    Multicore mc(m, scfg, 2, &image);
    w.warmup(mc.hierarchy());
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    uint64_t cycles = mc.run(100'000'000);
    return static_cast<double>(cycles) / m.coreFreqGhz(2);
}

} // namespace

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 1);

    GemmConfig base_cfg;
    base_cfg.mr = 4;
    base_cfg.nrVecs = 6;
    base_cfg.kSteps = flags.getInt("ksteps", 192);
    base_cfg.tiles = flags.getInt("tiles", 6);

    std::printf("Software (SparseTrain-style) vs hardware (SAVE) "
                "sparsity skipping, %dx%d explicit kernel, 2 VPUs.\n"
                "Speedup over the dense baseline; BS = broadcast "
                "(activation) sparsity, weights dense.\n\n",
                base_cfg.mr, base_cfg.nrVecs * 16);

    // Dense baseline reference time.
    MemoryImage dense_img;
    GemmWorkload dense = buildGemm(base_cfg, dense_img);
    double t_base = runTrace(SaveConfig::baseline(), dense, dense_img);

    std::printf("%-22s", "BS");
    for (int a = 0; a < 10; a += step)
        std::printf(" %5d%%", a * 10);
    std::printf("\n");

    struct Row
    {
        const char *label;
        bool sw;   // SparseTrain trace transform
        bool save; // SAVE hardware
    };
    const Row rows[] = {
        {"software only", true, false},
        {"SAVE only", false, true},
        {"SAVE + software", true, true},
    };
    for (const Row &row : rows) {
        std::printf("%-22s", row.label);
        for (int a = 0; a < 10; a += step) {
            GemmConfig g = base_cfg;
            g.bsSparsity = a * 0.1;
            g.seed = 300 + static_cast<uint64_t>(a);
            MemoryImage img;
            GemmWorkload w = row.sw ? buildSparseTrainGemm(g, img)
                                    : buildGemm(g, img);
            SaveConfig s =
                row.save ? SaveConfig{} : SaveConfig::baseline();
            std::printf(" %5.2f", t_base / runTrace(s, w, img));
        }
        std::printf("\n");
    }

    std::printf("\nNBS column check (60%% weight sparsity, BS=0): "
                "software cannot exploit it, SAVE can.\n");
    {
        GemmConfig g = base_cfg;
        g.nbsSparsity = 0.6;
        MemoryImage i1, i2;
        GemmWorkload sw = buildSparseTrainGemm(g, i1);
        GemmWorkload hw = buildGemm(g, i2);
        std::printf("  software only: %.2fx   SAVE only: %.2fx\n",
                    t_base / runTrace(SaveConfig::baseline(), sw, i1),
                    t_base / runTrace(SaveConfig{}, hw, i2));
    }
    std::printf("\nPaper SecVIII: \"SparseTrain only leverages "
                "broadcasted sparsity while SAVE exploits both "
                "broadcasted and non-broadcasted sparsity.\"\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
