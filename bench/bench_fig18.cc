/**
 * @file
 * Fig. 18 reproduction: VPU lane load-balancing techniques — VC, RVC,
 * VC+LWD, RVC+LWD, and the impractical HC reference — on the two
 * paper kernels: the FP32 back-propagation of input of ResNet3_2
 * (28 accumulators, full B reuse, effective CW ~ 1) and of ResNet5_1a
 * (21 accumulators, B reuse 7, effective CW ~ 3), with 1 VPU and
 * non-broadcasted sparsity only. Speedups are over the 2-VPU
 * baseline.
 */

#include "bench_util.h"

using namespace save;

static int
run(int argc, char **argv)
{
    Flags flags(argc, argv);
    int step = flags.getInt("grid", 1);
    SweepRunner runner(flags, "fig18",
                       {step, flags.getInt("ksteps", 192),
                        flags.getInt("tiles", 6)});

    MachineConfig m;
    NetworkModel net = resnet50Pruned();
    BenchResultCache rcache(flags);

    struct Variant
    {
        SchedPolicy policy;
        bool lwd;
        const char *label;
    };
    const Variant variants[] = {
        {SchedPolicy::VC, false, "VC"},
        {SchedPolicy::RVC, false, "RVC"},
        {SchedPolicy::VC, true, "VC+LWD"},
        {SchedPolicy::RVC, true, "RVC+LWD"},
        {SchedPolicy::HC, true, "HC"},
    };

    for (const char *layer : {"resnet3_2b", "resnet5_1a"}) {
        KernelSpec spec = makeConvKernel(findConvLayer(net, layer),
                                         Phase::BwdInput, net.batch);
        std::printf("=== %s: %dx%d, effective CW ~ %d ===\n",
                    spec.name.c_str(), spec.shape.mr,
                    spec.shape.nrVecs * 16,
                    spec.shape.mr * spec.shape.nrVecs / spec.shape.mr);

        Engine base(m, SaveConfig::baseline());
        GemmConfig dense = sliceFor(spec, Precision::Fp32, 0, 0, flags);
        auto rb = rcache.run(base, dense, 1, 2);

        std::printf("%-9s", "NBS");
        for (int w = 0; w < 10; w += step)
            std::printf(" %5d%%", w * 10);
        std::printf("\n");
        // All (variant, NBS) cells are independent: fan them out.
        struct Point
        {
            SchedPolicy policy;
            bool lwd;
            int w;
        };
        std::vector<Point> points;
        for (const Variant &v : variants)
            for (int w = 0; w < 10; w += step)
                points.push_back({v.policy, v.lwd, w});

        std::vector<double> speedups = parallelSweep(
            static_cast<int>(points.size()), [&](int i) {
                const Point &p = points[static_cast<size_t>(i)];
                std::string key =
                    std::string(layer) + "/pol" +
                    std::to_string(static_cast<int>(p.policy)) +
                    "/lwd" + std::to_string(p.lwd ? 1 : 0) + "/w" +
                    std::to_string(p.w);
                return runner.point<double>(key, [&] {
                    SaveConfig s;
                    s.policy = p.policy;
                    s.laneWiseDep = p.lwd;
                    Engine e(m, s);
                    GemmConfig g = sliceFor(
                        spec, Precision::Fp32, 0.0, p.w * 0.1, flags,
                        53 + static_cast<uint64_t>(p.w));
                    return speedup(rb, rcache.run(e, g, 1, 1));
                });
            });

        size_t next = 0;
        for (const Variant &v : variants) {
            std::printf("%-9s", v.label);
            for (int w = 0; w < 10; w += step)
                std::printf(" %6.2f", speedups[next++]);
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("Paper: with CW~1, plain VC suffers badly and RVC "
                "recovers; with CW~3, VC+LWD catches up to RVC; "
                "RVC+LWD is best everywhere and close to HC.\n");
    maybePrintCacheStats(flags, rcache.store());
    return runner.finish();
}

int
main(int argc, char **argv)
{
    return benchMain(argc, argv, [&] { return run(argc, argv); });
}
