/**
 * @file
 * Quickstart: simulate one sparse GEMM micro-kernel on the baseline
 * machine and on SAVE, and print the speedup plus key statistics.
 *
 *   ./quickstart [bs_sparsity] [nbs_sparsity]
 */

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"

int
main(int argc, char **argv)
{
    double bs = argc > 1 ? std::atof(argv[1]) : 0.0;
    double nbs = argc > 2 ? std::atof(argv[2]) : 0.6;

    save::MachineConfig machine;
    machine.cores = 4;

    save::GemmConfig gemm;
    gemm.mr = 4;
    gemm.nrVecs = 6;
    gemm.kSteps = 256;
    gemm.bsSparsity = bs;
    gemm.nbsSparsity = nbs;

    save::Engine baseline(machine, save::SaveConfig::baseline());
    save::Engine with_save(machine, save::SaveConfig{});

    auto rb = baseline.runGemm(gemm, /*cores=*/1, /*vpus=*/2);
    auto rs = with_save.runGemm(gemm, /*cores=*/1, /*vpus=*/2);

    std::printf("GEMM slice: %dx%d register tile, %d K steps, "
                "BS=%.0f%% NBS=%.0f%%\n",
                gemm.mr, gemm.nrVecs * 16, gemm.kSteps, 100 * bs,
                100 * nbs);
    std::printf("  baseline : %8lu cycles  (%.1f us)\n",
                static_cast<unsigned long>(rb.cycles),
                rb.timeNs / 1000.0);
    std::printf("  SAVE     : %8lu cycles  (%.1f us)\n",
                static_cast<unsigned long>(rs.cycles),
                rs.timeNs / 1000.0);
    std::printf("  speedup  : %.2fx\n", save::speedup(rb, rs));
    std::printf("\nbaseline stats:\n%s", rb.stats.dump("  ").c_str());
    std::printf("\nSAVE stats:\n%s", rs.stats.dump("  ").c_str());

    bool ok = with_save.verifyGemm(gemm);
    std::printf("\nfunctional equivalence vs in-order reference: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
