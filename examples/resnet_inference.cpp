/**
 * @file
 * ResNet-50 inference under weight pruning: how SAVE's benefit grows
 * with the pruning rate, and where disabling one VPU and boosting the
 * clock (paper SecIV-D) starts to win.
 *
 *   ./resnet_inference [--grid=N]
 */

#include <cstdio>

#include "dnn/estimator.h"
#include "dnn/networks.h"

using namespace save;

int
main(int argc, char **argv)
{
    EstimatorOptions opt;
    opt.gridStep = 3;
    for (int i = 1; i < argc; ++i)
        if (sscanf(argv[i], "--grid=%d", &opt.gridStep) == 1)
            break;

    TrainingEstimator est(MachineConfig{}, SaveConfig{}, opt);

    std::printf("ResNet-50 inference on a 28-core machine, mixed "
                "precision.\n");
    std::printf("%-10s %-12s %-10s %-10s %-10s %s\n", "pruning",
                "baseline", "SAVE 2VPU", "SAVE 1VPU", "dynamic",
                "best config");
    for (double target : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
        NetworkModel net =
            target > 0 ? resnet50Pruned() : resnet50Dense();
        net.schedule.targetSparsity = target;
        NetResult r = est.inference(net, Precision::Bf16);
        double base = r.baseline2.total();
        std::printf("%8.0f%%  %9.2f ms  %8.2fx  %8.2fx  %8.2fx  %s\n",
                    100 * target, base / 1e6, base / r.save2.total(),
                    base / r.save1.total(),
                    base / r.saveDynamic.total(),
                    r.save1.total() < r.save2.total()
                        ? "1 VPU @2.1GHz"
                        : "2 VPUs @1.7GHz");
    }
    std::printf("\nTakeaway: dense inference already gains from "
                "activation sparsity; pruning past ~60%% makes the "
                "boosted single-VPU configuration the better choice "
                "(paper SecVII-B).\n");
    return 0;
}
