/**
 * @file
 * SAVE is not DNN-specific: "it can potentially speed up any vector
 * workload with sparsity" (paper abstract). This example hand-builds
 * a non-GEMM trace — a masked n-body-style force accumulation where
 * many interaction coefficients are zero — runs it through the
 * baseline and SAVE pipelines, and checks bitwise equivalence against
 * in-order execution.
 *
 *   ./custom_sparse_workload [coefficient_sparsity]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "sim/multicore.h"
#include "sim/reference.h"
#include "util/random.h"

using namespace save;

namespace {

/**
 * Build the trace: 24 accumulator registers of "forces", grouped into
 * 6 particle groups of 4; each step loads one sparse coefficient
 * vector per group (its neighbor-interaction strengths, mostly zero
 * beyond the cutoff radius) and a broadcast position, then every
 * accumulator in the group gathers a contribution.
 */
struct Workload
{
    std::vector<Uop> trace;
    uint64_t inputBase = 0;
    uint64_t inputBytes = 0;
    uint64_t forcesBase = 0;
};

Workload
buildTrace(MemoryImage &mem, double sparsity)
{
    const int accumulators = 24;
    const int groups = 6;
    const int blocks = 512;
    /** A neighbor tile's coefficients stay in registers while several
     *  broadcast positions stream past (typical cached-tile n-body
     *  structure); reloaded every tileReuse steps. */
    const int tileReuse = 8;
    Rng rng(2024);

    Workload w;
    uint64_t coeff = mem.allocRegion(
        static_cast<uint64_t>(blocks / tileReuse) * groups *
        kLineBytes);
    uint64_t pos =
        mem.allocRegion(static_cast<uint64_t>(blocks) * 4);
    w.forcesBase = mem.allocRegion(
        static_cast<uint64_t>(accumulators) * kLineBytes);
    w.inputBase = coeff;
    w.inputBytes = pos + static_cast<uint64_t>(blocks) * 4 - coeff;
    uint64_t forces_base = w.forcesBase;

    for (uint64_t i = 0; i < static_cast<uint64_t>(blocks / tileReuse) *
                                 groups * kVecLanes;
         ++i) {
        float v = rng.chance(sparsity) ? 0.0f : rng.nonZeroValue();
        mem.writeF32(coeff + 4 * i, v);
    }
    for (int b = 0; b < blocks; ++b)
        mem.writeF32(pos + 4 * static_cast<uint64_t>(b),
                     rng.nonZeroValue());

    std::vector<Uop> trace;
    // Registers: 0..23 accumulators, 24..29 coefficients, 30 position.
    const int preg = accumulators + groups;
    for (int a = 0; a < accumulators; ++a)
        trace.push_back(Uop::loadVec(
            a, forces_base + static_cast<uint64_t>(a) * 64));
    for (int b = 0; b < blocks; ++b) {
        if (b % tileReuse == 0) {
            for (int g = 0; g < groups; ++g)
                trace.push_back(Uop::loadVec(
                    accumulators + g,
                    coeff +
                        (static_cast<uint64_t>(b / tileReuse) * groups +
                         static_cast<uint64_t>(g)) *
                            kLineBytes));
        }
        trace.push_back(Uop::broadcastLoad(
            preg, pos + 4 * static_cast<uint64_t>(b)));
        // Group by consecutive accumulator numbers so the R-states
        // (dst mod 3) of a group's chains differ and rotate-vertical
        // coalescing can separate their identical sparsity patterns.
        for (int a = 0; a < accumulators; ++a)
            trace.push_back(
                Uop::vfma(a, preg, accumulators + a / 4));
    }
    for (int a = 0; a < accumulators; ++a)
        trace.push_back(Uop::storeVec(
            a, forces_base + static_cast<uint64_t>(a) * 64));
    w.trace = std::move(trace);
    return w;
}

/** Run and return wall time in ns at the active core frequency. The
 *  input data (coefficients, positions) is warmed into L3, matching
 *  the paper's protocol of warm inputs from the producing phase. */
double
runOn(const SaveConfig &scfg, const Workload &w, MemoryImage &image,
      int vpus)
{
    MachineConfig m;
    m.cores = 1;
    Multicore mc(m, scfg, vpus, &image);
    for (uint64_t off = 0; off < w.inputBytes; off += kLineBytes)
        mc.hierarchy().warmL3(w.inputBase + off);
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    uint64_t cycles = mc.run(1'000'000);
    return static_cast<double>(cycles) / m.coreFreqGhz(vpus);
}

} // namespace

int
main(int argc, char **argv)
{
    double sparsity = argc > 1 ? std::atof(argv[1]) : 0.7;

    MemoryImage base_img;
    Workload w = buildTrace(base_img, sparsity);
    double base_ns = runOn(SaveConfig::baseline(), w, base_img, 2);

    MemoryImage save2_img;
    buildTrace(save2_img, sparsity);
    double save2_ns = runOn(SaveConfig{}, w, save2_img, 2);

    MemoryImage save1_img;
    buildTrace(save1_img, sparsity);
    double save1_ns = runOn(SaveConfig{}, w, save1_img, 1);

    MemoryImage ref_img;
    buildTrace(ref_img, sparsity);
    ArchExecutor ref(&ref_img);
    ref.run(w.trace);

    uint64_t forces = w.forcesBase;
    bool ok = true;
    for (uint64_t off = 0; off < 24 * 64; off += 4)
        ok &= save2_img.readU32(forces + off) ==
                  ref_img.readU32(forces + off) &&
              save1_img.readU32(forces + off) ==
                  ref_img.readU32(forces + off);

    std::printf("masked force accumulation, %.0f%% zero "
                "coefficients:\n",
                100 * sparsity);
    std::printf("  baseline (2 VPUs @1.7GHz): %8.2f us\n",
                base_ns / 1000);
    std::printf("  SAVE (2 VPUs @1.7GHz)    : %8.2f us  (%.2fx)\n",
                save2_ns / 1000, base_ns / save2_ns);
    std::printf("  SAVE (1 VPU @2.1GHz)     : %8.2f us  (%.2fx)\n",
                save1_ns / 1000, base_ns / save1_ns);
    std::printf("  bitwise equivalence vs in-order execution: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
