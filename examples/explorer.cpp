/**
 * @file
 * save-explorer: a command-line front end to the simulator for quick
 * what-if studies without writing code.
 *
 *   ./explorer [options]
 *     --mr=N --nr=N --ksteps=N --tiles=N     kernel shape
 *     --pattern=explicit|embedded            broadcast pattern
 *     --precision=fp32|bf16                  multiplicand precision
 *     --bs=F --nbs=F                         sparsity fractions
 *     --policy=baseline|vc|rvc|hc            scheduler policy
 *     --no-lwd --no-bcache --no-mp           feature ablations
 *     --vpus=1|2 --cores=N                   machine shape
 *     --verify                               check vs in-order exec
 *     --stats                                dump all counters
 *
 * Example: a pruned-weights kernel on one boosted VPU:
 *   ./explorer --mr=28 --nr=1 --pattern=embedded --nbs=0.8 --vpus=1
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/engine.h"
#include "util/thread_pool.h"

using namespace save;

namespace {

struct Args
{
    int argc;
    char **argv;

    double
    num(const char *name, double def) const
    {
        std::string p = std::string("--") + name + "=";
        for (int i = 1; i < argc; ++i)
            if (!std::strncmp(argv[i], p.c_str(), p.size()))
                return std::atof(argv[i] + p.size());
        return def;
    }

    std::string
    str(const char *name, const char *def) const
    {
        std::string p = std::string("--") + name + "=";
        for (int i = 1; i < argc; ++i)
            if (!std::strncmp(argv[i], p.c_str(), p.size()))
                return argv[i] + p.size();
        return def;
    }

    bool
    flag(const char *name) const
    {
        std::string f = std::string("--") + name;
        for (int i = 1; i < argc; ++i)
            if (f == argv[i])
                return true;
        return false;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    Args args{argc, argv};
    if (args.flag("help")) {
        std::printf("see the header comment of explorer.cpp for "
                    "options\n");
        return 0;
    }

    GemmConfig g;
    g.mr = static_cast<int>(args.num("mr", 7));
    g.nrVecs = static_cast<int>(args.num("nr", 3));
    g.kSteps = static_cast<int>(args.num("ksteps", 192));
    g.tiles = static_cast<int>(args.num("tiles", 6));
    g.bsSparsity = args.num("bs", 0.0);
    g.nbsSparsity = args.num("nbs", 0.5);
    g.seed = static_cast<uint64_t>(args.num("seed", 1));
    g.pattern = args.str("pattern", "embedded") == std::string("explicit")
        ? BroadcastPattern::Explicit
        : BroadcastPattern::Embedded;
    g.precision = args.str("precision", "fp32") == std::string("bf16")
        ? Precision::Bf16
        : Precision::Fp32;

    SaveConfig s;
    std::string pol = args.str("policy", "rvc");
    if (pol == "baseline")
        s = SaveConfig::baseline();
    else if (pol == "vc")
        s.policy = SchedPolicy::VC;
    else if (pol == "hc")
        s.policy = SchedPolicy::HC;
    else
        s.policy = SchedPolicy::RVC;
    if (args.flag("no-lwd"))
        s.laneWiseDep = false;
    if (args.flag("no-bcache"))
        s.bcache = BcastCacheKind::None;
    if (args.flag("no-mp"))
        s.mpCompress = false;

    MachineConfig m;
    int vpus = static_cast<int>(args.num("vpus", 2));
    int cores = static_cast<int>(args.num("cores", 1));

    Engine baseline(m, SaveConfig::baseline());
    Engine engine(m, s);
    // The baseline and configured runs are independent simulations:
    // overlap them on the host thread pool.
    KernelResult rb, r;
    ThreadPool::global().parallelFor(2, [&](int64_t i) {
        if (i == 0)
            rb = baseline.runGemm(g, cores, 2);
        else
            r = engine.runGemm(g, cores, vpus);
    });

    std::printf("kernel: %dx%d tile, %d K steps x %d tiles, %s %s, "
                "BS=%.0f%% NBS=%.0f%%\n",
                g.mr, g.nrVecs * 16, g.kSteps, g.tiles,
                g.pattern == BroadcastPattern::Explicit ? "explicit"
                                                        : "embedded",
                g.precision == Precision::Bf16 ? "bf16" : "fp32",
                100 * g.bsSparsity, 100 * g.nbsSparsity);
    std::printf("machine: %d core(s), %d VPU(s) @ %.1fGHz, policy "
                "%s%s\n",
                cores, vpus, m.coreFreqGhz(vpus), pol.c_str(),
                s.enabled && s.laneWiseDep ? "+lwd" : "");
    std::printf("baseline (2 VPUs): %8.2f us\n", rb.timeNs / 1000);
    std::printf("configured       : %8.2f us   speedup %.2fx\n",
                r.timeNs / 1000, speedup(rb, r));

    if (args.flag("stats"))
        std::printf("\n%s", r.stats.dump("  ").c_str());

    if (args.flag("verify")) {
        std::string why;
        bool ok = engine.verifyGemm(g, vpus, &why);
        std::printf("verification: %s %s\n", ok ? "PASS" : "FAIL",
                    why.c_str());
        return ok ? 0 : 1;
    }
    return 0;
}
