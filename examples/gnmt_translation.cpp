/**
 * @file
 * GNMT translation workload: per-cell timing of the pruned model's
 * forward pass, showing which LSTM cells dominate and how much SAVE
 * recovers from 90% weight pruning plus 20% dropout sparsity.
 *
 *   ./gnmt_translation
 */

#include <cstdio>

#include "dnn/estimator.h"
#include "dnn/networks.h"

using namespace save;

int
main()
{
    EstimatorOptions opt;
    opt.gridStep = 3;
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, opt);

    NetworkModel net = gnmtPruned();
    ActivationProfile act = net.profile();
    int64_t step = net.steps() - 1;
    double ws = net.schedule.sparsityAt(step);

    std::printf("GNMT inference, weights pruned to %.0f%%, dropout "
                "sparsity %.0f%% (FP32).\n\n",
                100 * ws, 100 * act.at(1, step));
    std::printf("%-20s %12s %12s %9s\n", "cell", "baseline(ms)",
                "SAVE(ms)", "speedup");

    double total_base = 0, total_save = 0;
    for (int i = 0; i < net.numKernels(); ++i) {
        const LstmCell &cell = net.cells[static_cast<size_t>(i)];
        KernelSpec spec = makeLstmKernel(cell, Phase::Forward);
        double bs = act.at(i, step);
        double tb = est.kernelTime(spec, Precision::Fp32, bs, ws,
                                   false, 2);
        double t2 = est.kernelTime(spec, Precision::Fp32, bs, ws,
                                   true, 2);
        double t1 = est.kernelTime(spec, Precision::Fp32, bs, ws,
                                   true, 1);
        double ts = std::min(t2, t1);
        total_base += tb;
        total_save += ts;
        std::printf("%-20s %12.3f %12.3f %8.2fx\n", cell.name.c_str(),
                    tb / 1e6, ts / 1e6, tb / ts);
    }
    std::printf("%-20s %12.3f %12.3f %8.2fx\n", "TOTAL",
                total_base / 1e6, total_save / 1e6,
                total_base / total_save);
    return 0;
}
