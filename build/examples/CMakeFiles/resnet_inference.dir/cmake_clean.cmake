file(REMOVE_RECURSE
  "CMakeFiles/resnet_inference.dir/resnet_inference.cpp.o"
  "CMakeFiles/resnet_inference.dir/resnet_inference.cpp.o.d"
  "resnet_inference"
  "resnet_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
