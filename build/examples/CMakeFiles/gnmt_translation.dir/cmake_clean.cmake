file(REMOVE_RECURSE
  "CMakeFiles/gnmt_translation.dir/gnmt_translation.cpp.o"
  "CMakeFiles/gnmt_translation.dir/gnmt_translation.cpp.o.d"
  "gnmt_translation"
  "gnmt_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnmt_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
