# Empty dependencies file for gnmt_translation.
# This may be replaced when dependencies are built.
