# Empty dependencies file for custom_sparse_workload.
# This may be replaced when dependencies are built.
