file(REMOVE_RECURSE
  "CMakeFiles/custom_sparse_workload.dir/custom_sparse_workload.cpp.o"
  "CMakeFiles/custom_sparse_workload.dir/custom_sparse_workload.cpp.o.d"
  "custom_sparse_workload"
  "custom_sparse_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sparse_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
