file(REMOVE_RECURSE
  "CMakeFiles/test_directconv.dir/test_directconv.cc.o"
  "CMakeFiles/test_directconv.dir/test_directconv.cc.o.d"
  "test_directconv"
  "test_directconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
