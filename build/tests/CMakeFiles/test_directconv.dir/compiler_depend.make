# Empty compiler generated dependencies file for test_directconv.
# This may be replaced when dependencies are built.
