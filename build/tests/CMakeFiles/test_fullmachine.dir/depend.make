# Empty dependencies file for test_fullmachine.
# This may be replaced when dependencies are built.
