file(REMOVE_RECURSE
  "CMakeFiles/test_fullmachine.dir/test_fullmachine.cc.o"
  "CMakeFiles/test_fullmachine.dir/test_fullmachine.cc.o.d"
  "test_fullmachine"
  "test_fullmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
