# Empty dependencies file for test_combination_window.
# This may be replaced when dependencies are built.
