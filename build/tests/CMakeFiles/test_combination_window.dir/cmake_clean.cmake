file(REMOVE_RECURSE
  "CMakeFiles/test_combination_window.dir/test_combination_window.cc.o"
  "CMakeFiles/test_combination_window.dir/test_combination_window.cc.o.d"
  "test_combination_window"
  "test_combination_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combination_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
