# Empty compiler generated dependencies file for test_blocked_gemm.
# This may be replaced when dependencies are built.
