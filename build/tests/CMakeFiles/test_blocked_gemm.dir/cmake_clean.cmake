file(REMOVE_RECURSE
  "CMakeFiles/test_blocked_gemm.dir/test_blocked_gemm.cc.o"
  "CMakeFiles/test_blocked_gemm.dir/test_blocked_gemm.cc.o.d"
  "test_blocked_gemm"
  "test_blocked_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocked_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
