# Empty dependencies file for test_networks_flops.
# This may be replaced when dependencies are built.
