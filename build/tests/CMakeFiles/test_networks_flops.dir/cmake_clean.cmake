file(REMOVE_RECURSE
  "CMakeFiles/test_networks_flops.dir/test_networks_flops.cc.o"
  "CMakeFiles/test_networks_flops.dir/test_networks_flops.cc.o.d"
  "test_networks_flops"
  "test_networks_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_networks_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
