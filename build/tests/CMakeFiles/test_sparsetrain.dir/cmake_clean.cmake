file(REMOVE_RECURSE
  "CMakeFiles/test_sparsetrain.dir/test_sparsetrain.cc.o"
  "CMakeFiles/test_sparsetrain.dir/test_sparsetrain.cc.o.d"
  "test_sparsetrain"
  "test_sparsetrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsetrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
