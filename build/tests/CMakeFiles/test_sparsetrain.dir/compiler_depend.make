# Empty compiler generated dependencies file for test_sparsetrain.
# This may be replaced when dependencies are built.
