# Empty dependencies file for test_rotated_copies.
# This may be replaced when dependencies are built.
