file(REMOVE_RECURSE
  "CMakeFiles/test_rotated_copies.dir/test_rotated_copies.cc.o"
  "CMakeFiles/test_rotated_copies.dir/test_rotated_copies.cc.o.d"
  "test_rotated_copies"
  "test_rotated_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rotated_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
