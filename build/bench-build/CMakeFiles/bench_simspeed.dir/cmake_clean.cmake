file(REMOVE_RECURSE
  "../bench/bench_simspeed"
  "../bench/bench_simspeed.pdb"
  "CMakeFiles/bench_simspeed.dir/bench_simspeed.cc.o"
  "CMakeFiles/bench_simspeed.dir/bench_simspeed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
