# Empty compiler generated dependencies file for bench_ablation_bcache.
# This may be replaced when dependencies are built.
