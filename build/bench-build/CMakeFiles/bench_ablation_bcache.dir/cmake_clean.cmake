file(REMOVE_RECURSE
  "../bench/bench_ablation_bcache"
  "../bench/bench_ablation_bcache.pdb"
  "CMakeFiles/bench_ablation_bcache.dir/bench_ablation_bcache.cc.o"
  "CMakeFiles/bench_ablation_bcache.dir/bench_ablation_bcache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
