file(REMOVE_RECURSE
  "../bench/bench_sparsetrain"
  "../bench/bench_sparsetrain.pdb"
  "CMakeFiles/bench_sparsetrain.dir/bench_sparsetrain.cc.o"
  "CMakeFiles/bench_sparsetrain.dir/bench_sparsetrain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsetrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
