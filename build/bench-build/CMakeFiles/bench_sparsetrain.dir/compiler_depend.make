# Empty compiler generated dependencies file for bench_sparsetrain.
# This may be replaced when dependencies are built.
