file(REMOVE_RECURSE
  "../bench/bench_ablation_rotation"
  "../bench/bench_ablation_rotation.pdb"
  "CMakeFiles/bench_ablation_rotation.dir/bench_ablation_rotation.cc.o"
  "CMakeFiles/bench_ablation_rotation.dir/bench_ablation_rotation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
