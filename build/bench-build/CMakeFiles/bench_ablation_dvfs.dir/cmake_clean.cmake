file(REMOVE_RECURSE
  "../bench/bench_ablation_dvfs"
  "../bench/bench_ablation_dvfs.pdb"
  "CMakeFiles/bench_ablation_dvfs.dir/bench_ablation_dvfs.cc.o"
  "CMakeFiles/bench_ablation_dvfs.dir/bench_ablation_dvfs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
