file(REMOVE_RECURSE
  "../bench/bench_directconv"
  "../bench/bench_directconv.pdb"
  "CMakeFiles/bench_directconv.dir/bench_directconv.cc.o"
  "CMakeFiles/bench_directconv.dir/bench_directconv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
