# Empty dependencies file for bench_directconv.
# This may be replaced when dependencies are built.
