file(REMOVE_RECURSE
  "libsave_lib.a"
)
