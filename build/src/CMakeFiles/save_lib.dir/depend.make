# Empty dependencies file for save_lib.
# This may be replaced when dependencies are built.
