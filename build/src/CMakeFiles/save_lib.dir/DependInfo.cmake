
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/activation_profile.cc" "src/CMakeFiles/save_lib.dir/dnn/activation_profile.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/dnn/activation_profile.cc.o.d"
  "/root/repo/src/dnn/estimator.cc" "src/CMakeFiles/save_lib.dir/dnn/estimator.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/dnn/estimator.cc.o.d"
  "/root/repo/src/dnn/networks.cc" "src/CMakeFiles/save_lib.dir/dnn/networks.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/dnn/networks.cc.o.d"
  "/root/repo/src/dnn/pruning.cc" "src/CMakeFiles/save_lib.dir/dnn/pruning.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/dnn/pruning.cc.o.d"
  "/root/repo/src/dnn/surface.cc" "src/CMakeFiles/save_lib.dir/dnn/surface.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/dnn/surface.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/save_lib.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/engine/engine.cc.o.d"
  "/root/repo/src/isa/uop.cc" "src/CMakeFiles/save_lib.dir/isa/uop.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/isa/uop.cc.o.d"
  "/root/repo/src/kernels/conv.cc" "src/CMakeFiles/save_lib.dir/kernels/conv.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/kernels/conv.cc.o.d"
  "/root/repo/src/kernels/directconv.cc" "src/CMakeFiles/save_lib.dir/kernels/directconv.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/kernels/directconv.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/CMakeFiles/save_lib.dir/kernels/gemm.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/kernels/gemm.cc.o.d"
  "/root/repo/src/kernels/lstm.cc" "src/CMakeFiles/save_lib.dir/kernels/lstm.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/kernels/lstm.cc.o.d"
  "/root/repo/src/kernels/sparsetrain.cc" "src/CMakeFiles/save_lib.dir/kernels/sparsetrain.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/kernels/sparsetrain.cc.o.d"
  "/root/repo/src/kernels/sparsity.cc" "src/CMakeFiles/save_lib.dir/kernels/sparsity.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/kernels/sparsity.cc.o.d"
  "/root/repo/src/mem/broadcast_cache.cc" "src/CMakeFiles/save_lib.dir/mem/broadcast_cache.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/mem/broadcast_cache.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/save_lib.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/save_lib.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/save_lib.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/memory_image.cc" "src/CMakeFiles/save_lib.dir/mem/memory_image.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/mem/memory_image.cc.o.d"
  "/root/repo/src/mem/mesh.cc" "src/CMakeFiles/save_lib.dir/mem/mesh.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/mem/mesh.cc.o.d"
  "/root/repo/src/save/frequency.cc" "src/CMakeFiles/save_lib.dir/save/frequency.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/save/frequency.cc.o.d"
  "/root/repo/src/save/mp_scheduler.cc" "src/CMakeFiles/save_lib.dir/save/mp_scheduler.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/save/mp_scheduler.cc.o.d"
  "/root/repo/src/save/scheduler.cc" "src/CMakeFiles/save_lib.dir/save/scheduler.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/save/scheduler.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/CMakeFiles/save_lib.dir/sim/core.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/core.cc.o.d"
  "/root/repo/src/sim/mgu.cc" "src/CMakeFiles/save_lib.dir/sim/mgu.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/mgu.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "src/CMakeFiles/save_lib.dir/sim/multicore.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/multicore.cc.o.d"
  "/root/repo/src/sim/reference.cc" "src/CMakeFiles/save_lib.dir/sim/reference.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/reference.cc.o.d"
  "/root/repo/src/sim/regfile.cc" "src/CMakeFiles/save_lib.dir/sim/regfile.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/regfile.cc.o.d"
  "/root/repo/src/sim/renamer.cc" "src/CMakeFiles/save_lib.dir/sim/renamer.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/renamer.cc.o.d"
  "/root/repo/src/sim/rob.cc" "src/CMakeFiles/save_lib.dir/sim/rob.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/rob.cc.o.d"
  "/root/repo/src/sim/rs.cc" "src/CMakeFiles/save_lib.dir/sim/rs.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/rs.cc.o.d"
  "/root/repo/src/sim/vpu.cc" "src/CMakeFiles/save_lib.dir/sim/vpu.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/sim/vpu.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/save_lib.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/stats/stats.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/save_lib.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/save_lib.dir/util/logging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
